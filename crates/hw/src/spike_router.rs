//! The spike NoC router with IF/spiking logic (Fig. 2c), vectorized over
//! planes.
//!
//! Per plane the router owns: the integrate-and-fire state (membrane
//! potential and threshold), a one-bit spike buffer, four input and four
//! output registers of the 5×5 crossbar, and a delivery buffer toward the
//! local core's axons. A `SPIKE` op integrates either the core's local
//! partial sum or the full weighted sum ejected by the PS router
//! (`sum_or_local` mux), fires when the potential exceeds the threshold
//! and subtracts the threshold on fire (reset-by-subtraction, which is
//! what makes rate-coded ANN→SNN conversion exact in expectation).
//!
//! Multicast: a `BYPASS` with `deliver = true` both forwards the spike to
//! the next hop and ejects a copy into the local axon buffer — the paper's
//! "ejecting the spike when it arrives at each destination in turn".

use shenjing_core::{Direction, Error, LocalSum, NocSum, Result};

use crate::occupancy::PortOccupancy;
use crate::ops::SpikeRouterOp;

/// All spike-NoC planes of one tile.
///
/// ```
/// use shenjing_hw::{SpikeRouter, SpikeRouterOp, PlaneSet};
///
/// let mut r = SpikeRouter::new(2);
/// r.set_threshold(0, 10)?;
/// r.integrate_value(0, 25); // as if SPIKE saw a weighted sum of 25
/// assert!(r.spike_buffer(0));      // fired
/// assert_eq!(r.potential(0), 15);  // threshold subtracted once
/// # Ok::<(), shenjing_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpikeRouter {
    planes: u16,
    /// `[plane]` membrane potentials.
    potential: Vec<i32>,
    /// `[plane]` firing thresholds.
    threshold: Vec<i32>,
    /// `[plane]` locally generated spike bits.
    spike_buf: Vec<bool>,
    /// `[port * planes + plane]` input registers.
    inputs: Vec<Option<bool>>,
    /// `[port * planes + plane]` output registers.
    outputs: Vec<Option<bool>>,
    /// Per-direction occupancy of `outputs`, the same shared
    /// [`PortOccupancy`] as [`PsRouter`](crate::PsRouter)'s: the transfer
    /// phase walks only occupied (port, plane) pairs.
    out_occ: PortOccupancy,
    /// Spikes delivered to the local core this cycle: `(plane, value)`.
    deliveries: Vec<(u16, bool)>,
}

impl SpikeRouter {
    /// Default firing threshold before configuration.
    pub const DEFAULT_THRESHOLD: i32 = 1;

    /// Creates the router block for a tile with `planes` neurons.
    pub fn new(planes: u16) -> SpikeRouter {
        SpikeRouter {
            planes,
            potential: vec![0; planes as usize],
            threshold: vec![Self::DEFAULT_THRESHOLD; planes as usize],
            spike_buf: vec![false; planes as usize],
            inputs: vec![None; planes as usize * 4],
            outputs: vec![None; planes as usize * 4],
            out_occ: PortOccupancy::new(planes),
            deliveries: Vec::new(),
        }
    }

    /// Number of planes.
    pub fn planes(&self) -> u16 {
        self.planes
    }

    /// Configures the firing threshold of one plane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `threshold` is not positive —
    /// an IF neuron with a non-positive threshold fires unconditionally
    /// and carries no information.
    pub fn set_threshold(&mut self, plane: u16, threshold: i32) -> Result<()> {
        if threshold <= 0 {
            return Err(Error::config(format!(
                "threshold {threshold} on plane {plane} must be positive"
            )));
        }
        self.threshold[plane as usize] = threshold;
        Ok(())
    }

    /// The configured threshold of a plane.
    pub fn threshold(&self, plane: u16) -> i32 {
        self.threshold[plane as usize]
    }

    /// The current membrane potential of a plane.
    pub fn potential(&self, plane: u16) -> i32 {
        self.potential[plane as usize]
    }

    /// The spike produced by the latest `SPIKE` op on a plane.
    pub fn spike_buffer(&self, plane: u16) -> bool {
        self.spike_buf[plane as usize]
    }

    /// Executes one op. `local_ps` is the neuron core's current local
    /// partial sums; `ps_eject` is the per-plane ejection register of the
    /// tile's PS router (consumed when `from_ps_router` is set).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidControl`] when a `SPIKE` from the PS router
    /// finds no ejected sum, or a `BYPASS` finds no in-flight spike;
    /// contention on output registers yields [`Error::InvalidSchedule`].
    pub fn exec(
        &mut self,
        op: &SpikeRouterOp,
        local_ps: &[LocalSum],
        ps_eject: &mut [Option<NocSum>],
    ) -> Result<()> {
        match op {
            SpikeRouterOp::Spike { from_ps_router, planes } => {
                for p in planes.iter(self.planes) {
                    let sum = if *from_ps_router {
                        ps_eject
                            .get_mut(p as usize)
                            .and_then(|e| e.take())
                            .ok_or_else(|| Error::InvalidControl {
                                component: "spike_router".into(),
                                reason: format!(
                                    "SPIKE from PS router on plane {p}: no ejected sum"
                                ),
                            })?
                            .value()
                    } else {
                        local_ps.get(p as usize).copied().unwrap_or(LocalSum::ZERO).value()
                    };
                    self.integrate_value(p, sum);
                }
            }
            SpikeRouterOp::Send { dst, planes } => {
                if matches!(planes, crate::PlaneSet::All) {
                    // Bulk whole-port path: one contention scan over the
                    // occupancy words, then a straight copy of the spike
                    // buffer into the port's (port-major, contiguous)
                    // output slice. Errors match the per-plane loop: the
                    // lowest occupied plane reports contention.
                    if let Some(p) = self.out_occ.first(*dst) {
                        return Err(Error::InvalidSchedule {
                            cycle: 0,
                            reason: format!(
                                "spike output register contention at port {dst}, plane {p}"
                            ),
                        });
                    }
                    let base = self.reg_index(*dst, 0);
                    for (out, &spike) in self.outputs[base..base + self.planes as usize]
                        .iter_mut()
                        .zip(&self.spike_buf)
                    {
                        *out = Some(spike);
                    }
                    self.out_occ.fill(*dst, self.planes);
                } else {
                    for p in planes.iter(self.planes) {
                        let spike = self.spike_buf[p as usize];
                        self.write_out(*dst, p, spike)?;
                    }
                }
            }
            SpikeRouterOp::Bypass { src, dst, deliver, planes } => {
                for p in planes.iter(self.planes) {
                    let idx = self.reg_index(*src, p);
                    let spike = self.inputs[idx].take().ok_or_else(|| Error::InvalidControl {
                        component: "spike_router".into(),
                        reason: format!("BYPASS on plane {p}: no spike at port {src}"),
                    })?;
                    if *deliver {
                        self.deliveries.push((p, spike));
                    }
                    if let Some(d) = dst {
                        self.write_out(*d, p, spike)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Integrates a weighted-sum value into a plane's potential and fires
    /// if above threshold, subtracting the threshold (at most one spike per
    /// integration — the hardware generates one spike bit per `SPIKE` op).
    ///
    /// Branchless and inlined: the bounds checks are hoisted into two
    /// indexed loads and the fire/reset select compiles to a compare plus
    /// masked subtract, which keeps the per-plane `SPIKE` sweep on the
    /// fall-through path (`spike_router_send_256_planes` tracks this).
    #[inline]
    pub fn integrate_value(&mut self, plane: u16, sum: i32) {
        let p = plane as usize;
        let threshold = self.threshold[p];
        let v = self.potential[p] + sum;
        let fire = v > threshold;
        self.spike_buf[p] = fire;
        self.potential[p] = v - (-i32::from(fire) & threshold);
    }

    /// Writes an incoming spike into the input register of `port`.
    ///
    /// # Errors
    ///
    /// Returns a contention error when the register still holds an
    /// unconsumed spike.
    pub fn put_input(&mut self, port: Direction, plane: u16, spike: bool) -> Result<()> {
        let idx = self.reg_index(port, plane);
        if self.inputs[idx].is_some() {
            return Err(Error::InvalidSchedule {
                cycle: 0,
                reason: format!("spike input register contention at port {port}, plane {plane}"),
            });
        }
        self.inputs[idx] = Some(spike);
        Ok(())
    }

    /// Removes and returns the output register of `port`/`plane`.
    pub fn take_output(&mut self, port: Direction, plane: u16) -> Option<bool> {
        let idx = self.reg_index(port, plane);
        let taken = self.outputs[idx].take();
        if taken.is_some() {
            self.out_occ.clear(port, plane);
        }
        taken
    }

    /// The lowest-indexed plane with a pending spike at `port`, if any
    /// (an occupancy-mask word scan, no per-plane probing).
    pub fn first_pending(&self, port: Direction) -> Option<u16> {
        self.out_occ.first(port)
    }

    /// Removes and returns the lowest-plane pending spike at `port` as
    /// `(plane, spike)`. Repeated calls drain the port in ascending plane
    /// order and return [`None`] once it is empty.
    pub fn take_next_output(&mut self, port: Direction) -> Option<(u16, bool)> {
        let plane = self.first_pending(port)?;
        let spike = self.take_output(port, plane).expect("occupancy mask tracks outputs");
        Some((plane, spike))
    }

    /// Drains the spikes delivered to the local core this cycle.
    pub fn drain_deliveries(&mut self) -> Vec<(u16, bool)> {
        std::mem::take(&mut self.deliveries)
    }

    /// Whether any output register holds a spike awaiting transfer (an
    /// occupancy-mask scan, not a register sweep).
    pub fn has_pending_output(&self) -> bool {
        self.out_occ.any()
    }

    /// Clears crossbar registers and spike buffers but **keeps membrane
    /// potentials** (they persist across timesteps of one frame).
    pub fn reset_network_state(&mut self) {
        self.inputs.iter_mut().for_each(|r| *r = None);
        self.outputs.iter_mut().for_each(|r| *r = None);
        self.out_occ.reset();
        self.spike_buf.iter_mut().for_each(|s| *s = false);
        self.deliveries.clear();
    }

    /// Zeroes membrane potentials (start of a new inference frame).
    pub fn reset_potentials(&mut self) {
        self.potential.iter_mut().for_each(|v| *v = 0);
    }

    fn write_out(&mut self, dst: Direction, plane: u16, spike: bool) -> Result<()> {
        let idx = self.reg_index(dst, plane);
        if self.outputs[idx].is_some() {
            return Err(Error::InvalidSchedule {
                cycle: 0,
                reason: format!("spike output register contention at port {dst}, plane {plane}"),
            });
        }
        self.outputs[idx] = Some(spike);
        self.out_occ.set(dst, plane);
        Ok(())
    }

    /// Port-major register layout, as in [`PsRouter`]: per-direction walks
    /// stay sequential in memory.
    #[inline]
    fn reg_index(&self, port: Direction, plane: u16) -> usize {
        port.encode() as usize * self.planes as usize + plane as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::PlaneSet;

    fn local(vals: &[i32]) -> Vec<LocalSum> {
        vals.iter().map(|&v| LocalSum::new(v).unwrap()).collect()
    }

    #[test]
    fn integrate_below_threshold_no_fire() {
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, 100).unwrap();
        r.integrate_value(0, 40);
        assert!(!r.spike_buffer(0));
        assert_eq!(r.potential(0), 40);
    }

    #[test]
    fn fire_and_reset_by_subtraction() {
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, 100).unwrap();
        r.integrate_value(0, 150);
        assert!(r.spike_buffer(0));
        assert_eq!(r.potential(0), 50, "threshold subtracted, remainder kept");
    }

    #[test]
    fn residual_potential_accumulates_to_next_spike() {
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, 100).unwrap();
        r.integrate_value(0, 60);
        assert!(!r.spike_buffer(0));
        r.integrate_value(0, 60);
        assert!(r.spike_buffer(0), "60+60 > 100");
        assert_eq!(r.potential(0), 20);
    }

    #[test]
    fn negative_sums_inhibit() {
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, 10).unwrap();
        r.integrate_value(0, -5);
        assert!(!r.spike_buffer(0));
        assert_eq!(r.potential(0), -5);
        r.integrate_value(0, 14);
        assert!(!r.spike_buffer(0), "-5 + 14 = 9 <= 10");
    }

    #[test]
    fn spike_op_from_local_ps() {
        let mut r = SpikeRouter::new(2);
        r.set_threshold(0, 5).unwrap();
        r.set_threshold(1, 5).unwrap();
        let mut eject: Vec<Option<NocSum>> = vec![None, None];
        r.exec(
            &SpikeRouterOp::Spike { from_ps_router: false, planes: PlaneSet::all() },
            &local(&[10, 3]),
            &mut eject,
        )
        .unwrap();
        assert!(r.spike_buffer(0));
        assert!(!r.spike_buffer(1));
    }

    #[test]
    fn spike_op_from_ps_router_consumes_eject() {
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, 5).unwrap();
        let mut eject = vec![Some(NocSum::new(9).unwrap())];
        r.exec(
            &SpikeRouterOp::Spike { from_ps_router: true, planes: PlaneSet::all() },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        assert!(r.spike_buffer(0));
        assert_eq!(eject[0], None, "ejected sum consumed");
        // Running again with empty eject register fails.
        let err = r
            .exec(
                &SpikeRouterOp::Spike { from_ps_router: true, planes: PlaneSet::all() },
                &local(&[0]),
                &mut eject,
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidControl { .. }));
    }

    #[test]
    fn send_injects_spike_buffer() {
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, 1).unwrap();
        r.integrate_value(0, 10);
        assert!(r.spike_buffer(0));
        let mut eject = vec![None];
        r.exec(
            &SpikeRouterOp::Send { dst: Direction::East, planes: PlaneSet::all() },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        assert_eq!(r.take_output(Direction::East, 0), Some(true));
    }

    #[test]
    fn bypass_forward_only() {
        let mut r = SpikeRouter::new(1);
        r.put_input(Direction::West, 0, true).unwrap();
        let mut eject = vec![None];
        r.exec(
            &SpikeRouterOp::Bypass {
                src: Direction::West,
                dst: Some(Direction::East),
                deliver: false,
                planes: PlaneSet::all(),
            },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        assert_eq!(r.take_output(Direction::East, 0), Some(true));
        assert!(r.drain_deliveries().is_empty());
    }

    #[test]
    fn bypass_multicast_delivers_and_forwards() {
        let mut r = SpikeRouter::new(1);
        r.put_input(Direction::North, 0, true).unwrap();
        let mut eject = vec![None];
        r.exec(
            &SpikeRouterOp::Bypass {
                src: Direction::North,
                dst: Some(Direction::South),
                deliver: true,
                planes: PlaneSet::all(),
            },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        assert_eq!(r.take_output(Direction::South, 0), Some(true));
        assert_eq!(r.drain_deliveries(), vec![(0, true)]);
    }

    #[test]
    fn bypass_terminal_delivery() {
        let mut r = SpikeRouter::new(1);
        r.put_input(Direction::North, 0, false).unwrap();
        let mut eject = vec![None];
        r.exec(
            &SpikeRouterOp::Bypass {
                src: Direction::North,
                dst: None,
                deliver: true,
                planes: PlaneSet::all(),
            },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        assert!(!r.has_pending_output());
        assert_eq!(r.drain_deliveries(), vec![(0, false)]);
    }

    #[test]
    fn bypass_without_input_is_error() {
        let mut r = SpikeRouter::new(1);
        let mut eject = vec![None];
        let err = r
            .exec(
                &SpikeRouterOp::Bypass {
                    src: Direction::East,
                    dst: Some(Direction::West),
                    deliver: false,
                    planes: PlaneSet::all(),
                },
                &local(&[0]),
                &mut eject,
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidControl { .. }));
    }

    #[test]
    fn contention_detected() {
        let mut r = SpikeRouter::new(1);
        r.put_input(Direction::North, 0, true).unwrap();
        assert!(r.put_input(Direction::North, 0, true).is_err());

        let mut eject = vec![None];
        r.exec(
            &SpikeRouterOp::Send { dst: Direction::East, planes: PlaneSet::all() },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        let err = r
            .exec(
                &SpikeRouterOp::Send { dst: Direction::East, planes: PlaneSet::all() },
                &local(&[0]),
                &mut eject,
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidSchedule { .. }));
    }

    #[test]
    fn occupancy_edge_cases() {
        let mut r = SpikeRouter::new(256);
        let mut eject = vec![None; 256];
        // Empty mask: nothing occupied.
        r.exec(
            &SpikeRouterOp::Send { dst: Direction::East, planes: PlaneSet::empty() },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        assert!(!r.has_pending_output());
        assert_eq!(r.take_next_output(Direction::East), None);

        // Single high plane index lands in the last occupancy word.
        r.integrate_value(255, 10); // fires (default threshold 1)
        r.exec(
            &SpikeRouterOp::Send { dst: Direction::East, planes: PlaneSet::from_indices([255u16]) },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        assert_eq!(r.first_pending(Direction::East), Some(255));
        assert_eq!(r.take_next_output(Direction::East), Some((255, true)));

        // Full mask: every plane pending, take-after-take drains ascending.
        r.exec(
            &SpikeRouterOp::Send { dst: Direction::West, planes: PlaneSet::all() },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        for expect in 0..256u16 {
            let (plane, _) = r.take_next_output(Direction::West).unwrap();
            assert_eq!(plane, expect);
        }
        assert_eq!(r.take_next_output(Direction::West), None);
        assert!(!r.has_pending_output());
    }

    #[test]
    fn network_reset_clears_occupancy() {
        let mut r = SpikeRouter::new(16);
        let mut eject = vec![None; 16];
        r.integrate_value(2, 5);
        r.exec(
            &SpikeRouterOp::Send { dst: Direction::North, planes: PlaneSet::from_indices([2u16]) },
            &local(&[0]),
            &mut eject,
        )
        .unwrap();
        assert!(r.has_pending_output());
        r.reset_network_state();
        assert!(!r.has_pending_output());
        assert_eq!(r.take_next_output(Direction::North), None);
    }

    #[test]
    fn threshold_validation() {
        let mut r = SpikeRouter::new(1);
        assert!(r.set_threshold(0, 0).is_err());
        assert!(r.set_threshold(0, -5).is_err());
        assert!(r.set_threshold(0, 1).is_ok());
        assert_eq!(r.threshold(0), 1);
    }

    #[test]
    fn resets() {
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, 2).unwrap();
        r.integrate_value(0, 3);
        r.put_input(Direction::North, 0, true).unwrap();
        r.reset_network_state();
        assert!(!r.spike_buffer(0));
        assert_eq!(r.potential(0), 1, "potential survives network reset");
        r.reset_potentials();
        assert_eq!(r.potential(0), 0);
        assert_eq!(r.threshold(0), 2, "threshold is configuration, not state");
    }

    #[test]
    fn exactly_at_threshold_does_not_fire() {
        // The paper: "if this sum exceeds a threshold" — strict inequality.
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, 10).unwrap();
        r.integrate_value(0, 10);
        assert!(!r.spike_buffer(0));
    }
}
