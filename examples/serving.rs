//! Multi-model serving: compile two classifiers once, register them
//! under ids with per-model SLOs, then drive mixed traffic through the
//! admission-controlled runtime — and verify along the way that the
//! serving path loses nothing over the single-frame simulator.
//!
//! Run with: `cargo run --release --example serving`
//!
//! Telemetry rides along: the runtime traces every request (dense
//! sampling) and the example prints a slice of the Prometheus metrics
//! snapshot. Set `SHENJING_TRACE_OUT=trace.json` to also dump a
//! Chrome-trace file loadable in Perfetto / `chrome://tracing` (and
//! checkable with `bench_gate trace-check`).

use std::time::{Duration, Instant};

use shenjing::datasets::{flatten_images, train_test_split};
use shenjing::prelude::*;
use shenjing::runtime::wire;
use shenjing::snn::{convert, snn_from_specs};

fn main() -> Result<()> {
    // 1. Train and convert a digit classifier, as in the quickstart.
    let data = SynthDigits::new(23).generate(300);
    let (train, test) = train_test_split(data, 0.8);
    let train = flatten_images(&train);
    let test = flatten_images(&test);
    println!("training a 784-32-10 MLP on {} synthetic digits...", train.len());
    let mut ann = Network::from_specs(
        &[LayerSpec::dense(784, 32), LayerSpec::relu(), LayerSpec::dense(32, 10)],
        5,
    )?;
    Sgd::new(0.02, 4, 6).train(&mut ann, &train)?;
    let calib: Vec<Tensor> = train.iter().take(24).map(|(x, _)| x.clone()).collect();
    let snn = convert(&mut ann, &calib, &ConversionOptions::default())?;

    // 2. Compile both tenants once into shared artifacts: the trained
    //    classifier, and a synthetic-weight copy of the zoo's MNIST MLP
    //    standing in for a second tenant.
    let arch = ArchSpec::paper();
    let digits = CompiledModel::compile(&arch, &snn)?;
    let zoo_snn = snn_from_specs(&NetworkKind::MnistMlp.specs(), (28, 28, 1), 7)?;
    let zoo = CompiledModel::compile(&arch, &zoo_snn)?;
    for (id, m) in [("digits", &digits), ("zoo", &zoo)] {
        println!(
            "compiled `{id}`: {} cores on {} chip(s), {} inputs -> {} outputs",
            m.total_cores(),
            m.chips(),
            m.input_len(),
            m.output_len(),
        );
        // The compile pipeline ends in the schedule optimizer; what it
        // bought each tenant (also exported as the
        // `shenjing_schedule_cycles` gauges below).
        let raw = m.block_cycles();
        let compacted = m.program().compacted_cycles().unwrap_or(raw);
        println!(
            "  schedule: {raw} raw cycles/pass -> {compacted} compacted ({:.1}x shorter walk)",
            raw as f64 / compacted as f64,
        );
    }
    // The worker-pool width every replica will fan tile groups across
    // (also exported as the `shenjing_intra_pass_threads` gauge below).
    println!(
        "intra-pass worker pool: {} thread(s) per replica (SHENJING_NUM_THREADS to override)",
        shenjing::sim::parallel::resolve(None),
    );

    // 3. Register them with per-model policies: the trained classifier is
    //    latency-critical (higher priority, 250 ms SLO, warm on every
    //    worker); the zoo tenant is best-effort with one warm replica.
    let timesteps = 12;
    let registry = ModelRegistry::new()
        .with_model(
            "digits",
            digits.clone(),
            ServeOptions::default()
                .with_priority(2)
                .with_deadline(Duration::from_millis(250))
                .with_warm_replicas(2),
        )?
        .with_model("zoo", zoo, ServeOptions::default().with_timesteps(8))?;
    let config = RuntimeConfig::builder()
        .workers(2)
        .max_batch(8)
        .max_wait(Duration::from_millis(5))
        .timesteps(timesteps)
        .queue_depth(128)
        // Trace every request instead of the production 1-in-16 default:
        // the demo's 48 frames should all show up in the exported trace.
        .telemetry(TelemetryConfig::dense())
        .build()?;
    let runtime = Runtime::serve(registry, config)?;

    // 4. Mixed traffic: every third request goes to the zoo tenant. The
    //    digit requests ride the wire format both ways, the way a remote
    //    client would submit them.
    let frames: Vec<Tensor> = test.iter().take(48).map(|(x, _)| x.clone()).collect();
    let started = Instant::now();
    let mut pending = Vec::new();
    for (k, frame) in frames.iter().enumerate() {
        let request = if k % 3 == 2 {
            InferenceRequest::new("zoo", frame.clone())
        } else {
            InferenceRequest::new("digits", frame.clone())
        };
        let decoded = wire::decode_request(&wire::encode_request(&request)?)?;
        pending.push(runtime.submit(decoded)?);
    }
    let replies: Vec<InferenceReply> =
        pending.into_iter().map(|p| p.wait()).collect::<Result<_>>()?;
    let wall = started.elapsed();

    // 5. Admission control in action: an already-spent deadline budget is
    //    refused with a typed reason before it could burn a lane.
    let doomed = InferenceRequest::new("digits", frames[0].clone()).with_deadline(Duration::ZERO);
    if let Err(e) = runtime.submit(doomed) {
        println!("admission control: {e} ({:?})", e.reject_reason());
    }

    // 6. Observability: every request was traced (dense sampling above),
    //    so the lifecycle spans and engine phase profiles are sitting in
    //    the telemetry ring. Export them before shutdown consumes the
    //    runtime — a Chrome trace if `SHENJING_TRACE_OUT` names a path,
    //    and the engine-phase slice of the Prometheus snapshot here.
    if let Ok(path) = std::env::var("SHENJING_TRACE_OUT") {
        std::fs::write(&path, runtime.trace_json()?).expect("write trace file");
        println!("wrote Chrome trace to `{path}` — load it in Perfetto or chrome://tracing");
    }
    let metrics = runtime.metrics_text();
    println!("from the Prometheus snapshot (engine phases, queue wait vs service time):");
    for line in metrics.lines().filter(|l| {
        l.starts_with("shenjing_engine_phase_ns_total")
            || l.starts_with("shenjing_profiled_batches_total ")
            || l.starts_with("shenjing_queue_wait_seconds")
            || l.starts_with("shenjing_service_time_seconds")
    }) {
        println!("  {line}");
    }

    let stats = runtime.shutdown()?;
    println!(
        "served {} frames in {:.1} ms: {:.1} frames/s, {} batches (mean occupancy {:.1})",
        stats.completed,
        wall.as_secs_f64() * 1e3,
        stats.completed as f64 / wall.as_secs_f64(),
        stats.batches,
        stats.mean_batch_occupancy,
    );
    for model in &stats.models {
        let s = &model.stats;
        println!(
            "  `{}`: {} frames in {} batches, p50 {:.2} ms, p99 {:.2} ms, {} cold start(s)",
            model.id,
            s.completed,
            s.batches,
            s.p50_latency.as_secs_f64() * 1e3,
            s.p99_latency.as_secs_f64() * 1e3,
            s.cold_starts,
        );
    }
    println!(
        "engine dispatch: {} frames sparse-sequential ({} batches), {} frames batched ({} batches), \
         mean input density {:.1}%",
        stats.sequential_frames,
        stats.sequential_batches,
        stats.batched_frames,
        stats.batched_batches,
        100.0 * stats.mean_input_density,
    );
    println!(
        "admission: {} queue-full, {} dead-on-arrival, {} expired in queue",
        stats.rejected_queue_full, stats.rejected_deadline, stats.expired_in_queue,
    );
    // Fault tolerance rides along in the same snapshot: a clean run
    // reports zeros, a faulted one shows the supervisor healing.
    println!(
        "fault tolerance: {} worker restart(s), {} retried request(s), {} quarantine(s), \
         {}/{} workers healthy",
        stats.worker_restarts,
        stats.retries,
        stats.quarantines,
        stats.workers.iter().filter(|w| w.healthy).count(),
        stats.workers.len(),
    );

    // 7. The serving path is bit-exact against the single-frame simulator
    //    (spot-checked here; the property tests cover it exhaustively) —
    //    and batches never mixed tenants.
    let mut reference = digits.instantiate()?;
    for ((frame, _), reply) in test.iter().take(2).zip(&replies) {
        let want = reference.run_frame(frame, timesteps)?;
        assert_eq!(reply.output, want, "batched serving must stay bit-exact");
    }
    let per_model_batches: u64 = stats.models.iter().map(|m| m.stats.batches).sum();
    assert_eq!(per_model_batches, stats.batches, "every batch belongs to exactly one model");
    let correct = test
        .iter()
        .take(48)
        .zip(&replies)
        .filter(|((_, label), reply)| reply.model_id == "digits" && reply.predicted == *label)
        .count();
    let digit_replies = replies.iter().filter(|r| r.model_id == "digits").count();
    println!(
        "accuracy over the served digit frames: {:.1}% (bit-exact vs the single-frame simulator)",
        100.0 * correct as f64 / digit_replies as f64
    );
    Ok(())
}
