//! Component-level microarchitecture throughput: ACC sweeps, PS router
//! folds, spike crossbar traversals.

use criterion::{criterion_group, criterion_main, Criterion};
use shenjing::core::{ArchSpec, Direction, LocalSum, NocSum, W5};
use shenjing::hw::{
    NeuronCore, PlaneSet, PsDst, PsRouter, PsRouterOp, PsSendSource, SpikeRouter, SpikeRouterOp,
};

fn bench_hw(c: &mut Criterion) {
    let arch = ArchSpec::paper();

    // Neuron core ACC over a fully loaded 256x256 core at ~6% activity.
    let mut core = NeuronCore::new(&arch);
    for a in 0..arch.core_inputs {
        for n in 0..arch.core_neurons {
            core.write_weight(a, n, W5::saturating(i32::from(a % 31) - 15)).unwrap();
        }
    }
    for a in (0..arch.core_inputs).step_by(16) {
        core.set_axon(a, true).unwrap();
    }
    c.bench_function("neuron_core_acc_256x256", |b| b.iter(|| core.accumulate(0b1111).unwrap()));

    // PS router: a full 256-plane SUM.
    let local: Vec<LocalSum> = (0..256).map(|i| LocalSum::new(i % 100).unwrap()).collect();
    c.bench_function("ps_router_sum_256_planes", |b| {
        b.iter(|| {
            let mut router = PsRouter::new(256);
            for p in 0..256u16 {
                router.put_input(Direction::South, p, NocSum::new(7).unwrap()).unwrap();
            }
            router
                .exec(
                    &PsRouterOp::Sum {
                        src: Direction::South,
                        consec: false,
                        planes: PlaneSet::all(),
                    },
                    &local,
                )
                .unwrap();
            router
        })
    });

    // Spike router: full-plane inject + send.
    c.bench_function("spike_router_send_256_planes", |b| {
        b.iter(|| {
            let mut router = SpikeRouter::new(256);
            for p in 0..256u16 {
                router.integrate_value(p, 10);
            }
            let mut eject = vec![None; 256];
            router
                .exec(
                    &SpikeRouterOp::Send { dst: Direction::East, planes: PlaneSet::all() },
                    &local,
                    &mut eject,
                )
                .unwrap();
            router
        })
    });

    // PS send path end to end: SEND local PS to a port.
    c.bench_function("ps_router_send_local_256_planes", |b| {
        b.iter(|| {
            let mut router = PsRouter::new(256);
            router
                .exec(
                    &PsRouterOp::Send {
                        source: PsSendSource::LocalPs,
                        dst: PsDst::Port(Direction::North),
                        planes: PlaneSet::all(),
                    },
                    &local,
                )
                .unwrap();
            router
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hw
}
criterion_main!(benches);
