//! Property-based tests on the core invariants of the system.

use proptest::prelude::*;
use shenjing::core::{fixed::quantize_weights, CoreCoord, Direction, LocalSum, NocSum, W5};
use shenjing::hw::{ControlWord, NeuronCoreOp, PlaneSet, PsRouterOp, PsSendSource, SpikeRouterOp};
use shenjing::hw::{PsDst, SpikeRouter};

proptest! {
    /// X-Y routes are minimal, deterministic and end at the destination.
    #[test]
    fn xy_routes_minimal(sr in 0u16..30, sc in 0u16..30, dr in 0u16..30, dc in 0u16..30) {
        let src = CoreCoord::new(sr, sc);
        let dst = CoreCoord::new(dr, dc);
        let route = src.xy_route(dst);
        prop_assert_eq!(route.len() as u32, src.manhattan_distance(dst));
        if src != dst {
            prop_assert_eq!(*route.last().unwrap(), dst);
        }
        // Column corrected before row (dimension order).
        let mut corrected_col = false;
        let mut cur = src;
        for hop in &route {
            if corrected_col {
                prop_assert_eq!(hop.col, dst.col, "row moves only after column settles");
            }
            if hop.col == dst.col {
                corrected_col = true;
            }
            prop_assert_eq!(cur.manhattan_distance(*hop), 1, "unit steps");
            cur = *hop;
        }
    }

    /// Weight quantization round-trips within half a quantization step.
    #[test]
    fn quantization_error_bounded(ws in proptest::collection::vec(-10.0f64..10.0, 1..50)) {
        let (q, scale) = quantize_weights(&ws);
        prop_assert_eq!(q.len(), ws.len());
        let max_abs = ws.iter().fold(0.0f64, |m, w| m.max(w.abs()));
        if max_abs > 0.0 {
            for (orig, quant) in ws.iter().zip(&q) {
                let back = f64::from(quant.value()) / scale;
                prop_assert!((back - orig).abs() <= 0.5 / scale + 1e-12,
                    "{orig} -> {} -> {back}", quant.value());
            }
        }
    }

    /// Fixed-point additions never silently wrap: a checked add either
    /// returns the exact mathematical sum or errors.
    #[test]
    fn noc_sum_checked_add_exact(a in -32768i32..=32767, b in -32768i32..=32767) {
        let x = NocSum::new(a).unwrap();
        let y = NocSum::new(b).unwrap();
        match x.checked_add(y) {
            Ok(s) => prop_assert_eq!(s.value(), a + b),
            Err(_) => prop_assert!(a + b > 32767 || a + b < -32768),
        }
    }

    /// Local sums accumulate weights exactly within range.
    #[test]
    fn local_sum_accumulation_exact(ws in proptest::collection::vec(-16i32..=15, 0..200)) {
        let mut sum = LocalSum::ZERO;
        let mut exact = 0i32;
        let mut overflowed = false;
        for w in &ws {
            exact += *w;
            match sum.add_weight(W5::new(*w).unwrap()) {
                Ok(s) => sum = s,
                Err(_) => { overflowed = true; break; }
            }
        }
        if !overflowed {
            prop_assert_eq!(sum.value(), exact);
        }
    }

    /// An IF neuron's spike count over a frame equals the rate-code ideal
    /// to within one spike: floor(total_input / threshold) ± 1. This holds
    /// in the sub-threshold regime (per-step sum ≤ threshold), which is
    /// exactly what data-based weight normalization guarantees — a
    /// super-threshold input saturates at one spike per timestep (the
    /// hardware emits one spike bit per SPIKE op).
    #[test]
    fn if_neuron_rate_property(sum in 1i32..200, extra in 0i32..300, steps in 1u32..100) {
        let threshold = sum + extra;
        let mut r = SpikeRouter::new(1);
        r.set_threshold(0, threshold).unwrap();
        let mut spikes = 0i64;
        for _ in 0..steps {
            r.integrate_value(0, sum);
            if r.spike_buffer(0) {
                spikes += 1;
            }
        }
        let total = i64::from(sum) * i64::from(steps);
        let ideal = total / i64::from(threshold);
        prop_assert!((spikes - ideal).abs() <= 1,
            "spikes {spikes} vs ideal {ideal} (sum {sum}, θ {threshold}, T {steps})");
    }

    /// Control-word encoding round-trips for random PS router ops.
    #[test]
    fn control_word_roundtrip_ps(
        src_bits in 0u8..4,
        dst_bits in 0u8..5,
        consec in any::<bool>(),
        sum_buf in any::<bool>(),
        kind in 0u8..3,
    ) {
        let src = Direction::decode(src_bits).unwrap();
        let dst = if dst_bits == 4 {
            PsDst::SpikingLogic
        } else {
            PsDst::Port(Direction::decode(dst_bits).unwrap())
        };
        let op = match kind {
            0 => PsRouterOp::Sum { src, consec, planes: PlaneSet::all() },
            1 => PsRouterOp::Send {
                source: if sum_buf { PsSendSource::SumBuf } else { PsSendSource::LocalPs },
                dst,
                planes: PlaneSet::all(),
            },
            _ => PsRouterOp::Bypass { src, dst, planes: PlaneSet::all() },
        };
        let word = ControlWord::encode_ps(&op);
        let decoded = word.decode(PlaneSet::all()).unwrap();
        match decoded {
            shenjing::hw::signals::DecodedOp::Ps(back) => prop_assert_eq!(back, op),
            other => prop_assert!(false, "wrong family {:?}", other),
        }
    }

    /// Control-word encoding round-trips for random spike router ops.
    #[test]
    fn control_word_roundtrip_spike(
        src_bits in 0u8..4,
        dst_bits in 0u8..5,
        deliver in any::<bool>(),
        kind in 0u8..3,
        from_ps in any::<bool>(),
    ) {
        let src = Direction::decode(src_bits).unwrap();
        let dst = if dst_bits == 4 { None } else { Some(Direction::decode(dst_bits).unwrap()) };
        let op = match kind {
            0 => SpikeRouterOp::Spike { from_ps_router: from_ps, planes: PlaneSet::all() },
            1 => SpikeRouterOp::Send {
                dst: dst.unwrap_or(Direction::North),
                planes: PlaneSet::all(),
            },
            _ => {
                if dst.is_none() && !deliver {
                    // Not a valid op; substitute a delivering terminal.
                    SpikeRouterOp::Bypass { src, dst: None, deliver: true, planes: PlaneSet::all() }
                } else {
                    SpikeRouterOp::Bypass { src, dst, deliver, planes: PlaneSet::all() }
                }
            }
        };
        let word = ControlWord::encode_spike(&op);
        let decoded = word.decode(PlaneSet::all()).unwrap();
        match decoded {
            shenjing::hw::signals::DecodedOp::Spike(back) => prop_assert_eq!(back, op),
            other => prop_assert!(false, "wrong family {:?}", other),
        }
    }

    /// Neuron core control words round-trip.
    #[test]
    fn control_word_roundtrip_core(banks in 1u8..16, load in any::<bool>()) {
        let op = if load {
            NeuronCoreOp::LdWt { banks }
        } else {
            NeuronCoreOp::Acc { banks }
        };
        let word = ControlWord::encode_core(&op);
        let decoded = word.decode(PlaneSet::all()).unwrap();
        match decoded {
            shenjing::hw::signals::DecodedOp::Core(back) => prop_assert_eq!(back, op),
            other => prop_assert!(false, "wrong family {:?}", other),
        }
    }

    /// PlaneSet membership is consistent between construction forms.
    #[test]
    fn plane_set_membership(indices in proptest::collection::btree_set(0u16..256, 0..40)) {
        let set = PlaneSet::from_indices(indices.iter().copied());
        for i in 0u16..256 {
            prop_assert_eq!(set.contains(i), indices.contains(&i));
        }
        prop_assert_eq!(set.count(256), indices.len());
    }
}

/// Algorithm 1 schedule properties, checked over many fold-group sizes:
/// every member's value reaches the root exactly once.
#[test]
fn algorithm1_fold_reaches_root_exactly_once() {
    for n in 1usize..40 {
        // Simulate the fold arithmetic symbolically: each member starts
        // with the singleton set {i}; a send merges the source's set into
        // the destination's.
        let mut sets: Vec<std::collections::BTreeSet<usize>> =
            (0..n).map(|i| [i].into_iter().collect()).collect();
        let mut f = 1;
        while f < n {
            let mut i = f;
            while i < n {
                let moved = std::mem::take(&mut sets[i]);
                let dst = i - f;
                for item in moved {
                    assert!(
                        sets[dst].insert(item),
                        "n={n}: member {item} delivered twice to {dst}"
                    );
                }
                i += 2 * f;
            }
            f *= 2;
        }
        let expect: std::collections::BTreeSet<usize> = (0..n).collect();
        assert_eq!(sets[0], expect, "n={n}: root must hold every partial exactly once");
        for (i, s) in sets.iter().enumerate().skip(1) {
            assert!(s.is_empty(), "n={n}: member {i} kept residue {s:?}");
        }
    }
}
