//! Precompiled per-cycle execution schedules — the optimizer's output.
//!
//! The raw decoded schedule is a list of `(cycle, ops)` pairs that the
//! chip re-derives per pass: which tiles were touched, which ports can
//! hold pending data, which tiles may have queued deliveries. A
//! [`CycleOps`] entry materializes all of that once at compile time so the
//! per-pass hot loop (`Chip::exec_ops`, `BatchChip::exec_ops`) only walks
//! pre-resolved tile indices and port lists.
//!
//! One entry covers a *run* of source cycles: zero or more statically
//! passive cycles (no port-output producers, no delivery-queueing ops)
//! followed by at most one active cycle. A passive cycle's transfer and
//! commit phases are provably no-ops — outputs and deliveries can only
//! originate from ops, and every prior cycle's transfer drained all
//! pending outputs — so folding those cycles into their successor leaves
//! the effectful step sequence, including every error and its reported
//! cycle number, identical to the raw walk.

use shenjing_core::{CoreCoord, Direction};

use crate::ops::AtomicOp;
use crate::plane::PlaneSet;

/// One op of a compacted schedule, carrying its *source* cycle number.
///
/// Errors raised while executing the op are annotated with this cycle, so
/// compaction never changes which cycle an `InvalidSchedule` reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledOp {
    /// Original (pre-compaction) cycle the op was scheduled at.
    pub cycle: u64,
    /// Pre-resolved row-major tile index.
    pub tile: usize,
    /// The operation itself.
    pub op: AtomicOp,
}

/// A mesh port that an active cycle's ops can leave pending data on.
#[derive(Debug, Clone, PartialEq)]
pub struct PortOut {
    /// Row-major index of the source tile.
    pub tile: usize,
    /// Coordinate of the source tile (for error messages).
    pub coord: CoreCoord,
    /// Output direction being driven.
    pub dir: Direction,
    /// Row-major index of the neighbor tile, or `None` when the port faces
    /// off the mesh edge (driving it is a schedule error).
    pub dst: Option<usize>,
    /// Whether a PS-router op drives this port this cycle.
    pub ps: bool,
    /// Whether a spike-router op drives this port this cycle.
    pub spike: bool,
    /// Union of the producing ops' plane masks (diagnostic; the transfer
    /// drains whatever is pending, which is always a subset of this).
    pub planes: PlaneSet,
}

/// A conflict-free group of ops within one [`CycleOps`] entry: all the
/// entry's ops that execute on one tile, in source order.
///
/// Op execution is tile-local — `Tile::exec` / `BatchTile::exec` read and
/// write only their own tile's registers — so two groups with different
/// `tile` indices never touch the same state and can run concurrently.
/// Within a group the source order is preserved, so a single-threaded
/// walk of any one group is exactly the serial walk restricted to that
/// tile.
#[derive(Debug, Clone, PartialEq)]
pub struct TileGroup {
    /// Row-major tile index every op in this group executes on.
    pub tile: usize,
    /// Indices into the owning entry's `ops`, ascending (source order).
    pub ops: Vec<u32>,
}

/// One compacted schedule entry: the ops of a run of source cycles plus
/// the precomputed transfer/commit work of the run's single active cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleOps {
    /// All ops of the run, in source order (cycle-major, decode order
    /// within a cycle), each tagged with its source cycle.
    pub ops: Vec<ScheduledOp>,
    /// The same ops partitioned into conflict-free per-tile groups
    /// (sorted by tile), the unit the intra-pass worker pool fans out
    /// over. Every op index appears in exactly one group.
    pub op_groups: Vec<TileGroup>,
    /// Ports the active cycle's producers can leave data on, sorted by
    /// `(tile, N/S/E/W)` to match the raw transfer's scan order. Empty
    /// when the run has no active cycle (trailing passive cycles).
    pub out_ports: Vec<PortOut>,
    /// Tiles (sorted, deduplicated) whose spike routers may queue axon
    /// deliveries this run; only these need a commit phase.
    pub deliver_tiles: Vec<usize>,
    /// Source cycle number of the run's active cycle (or of its last
    /// cycle when fully passive) — transfer-phase errors report this.
    pub transfer_cycle: u64,
}

impl CycleOps {
    /// Number of source-schedule ops folded into this entry.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether fanning this entry's groups across the worker pool can
    /// pay for its spawn cost: at least two groups carrying core (ACC)
    /// work, the dominant cost class. Router-only entries stay serial —
    /// their per-op cost is far below a thread spawn. This is a pure
    /// performance heuristic; correctness never depends on it.
    pub fn parallel_worthwhile(&self) -> bool {
        let core_groups = self
            .op_groups
            .iter()
            .filter(|g| g.ops.iter().any(|&i| matches!(self.ops[i as usize].op, AtomicOp::Core(_))))
            .count();
        core_groups >= 2
    }
}

/// Partitions `ops` into conflict-free per-tile groups (sorted by tile,
/// op indices in source order). Run once at compile time by the schedule
/// optimizer; the result is stored on [`CycleOps::op_groups`].
pub fn tile_groups(ops: &[ScheduledOp]) -> Vec<TileGroup> {
    let mut groups: Vec<TileGroup> = Vec::new();
    for (i, s) in ops.iter().enumerate() {
        // Entries touch a handful of tiles; a linear probe beats a map.
        match groups.iter_mut().find(|g| g.tile == s.tile) {
            Some(g) => g.ops.push(i as u32),
            None => groups.push(TileGroup { tile: s.tile, ops: vec![i as u32] }),
        }
    }
    groups.sort_by_key(|g| g.tile);
    groups
}
