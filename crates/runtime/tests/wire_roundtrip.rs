//! Property: the wire format is an identity — any [`InferenceRequest`]
//! or [`WireReply`] encodes to JSON and decodes back to an equal value.
//!
//! The serving tier's remote story rests on this: whatever tensor
//! payload, deadline budget, priority and model id a client constructs,
//! the runtime sees exactly that after the wire, and the client sees
//! exactly the runtime's verdict (including typed rejection reasons)
//! after the reply hop. Random tensors, options and reply shapes pin
//! both directions.

use std::time::Duration;

use proptest::prelude::*;
use shenjing_core::RejectReason;
use shenjing_nn::Tensor;
use shenjing_runtime::wire::{
    decode_reply, decode_request, encode_reply, encode_request, WireReply,
};
use shenjing_runtime::{EngineKind, InferenceReply, InferenceRequest};
use shenjing_snn::SnnOutput;

/// Model-id pool: empty-adjacent, unicode and plain ids all must survive.
const IDS: [&str; 4] = ["m", "mnist-mlp", "cifar_cnn", "zoo/résnet-20"];

proptest! {
    #[test]
    fn request_roundtrip_is_identity(
        len in 1usize..48,
        fill in proptest::collection::vec(0.0f64..1.0, 48),
        id_sel in 0usize..4,
        deadline_us in 0u64..10_000_000,
        has_deadline in proptest::prelude::any::<bool>(),
        priority in 0u8..=255,
        has_priority in proptest::prelude::any::<bool>(),
    ) {
        let input = Tensor::from_vec(vec![len], fill[..len].to_vec()).unwrap();
        let mut request = InferenceRequest::new(IDS[id_sel], input);
        if has_deadline {
            request = request.with_deadline(Duration::from_micros(deadline_us));
        }
        if has_priority {
            request = request.with_priority(priority);
        }
        let json = encode_request(&request).unwrap();
        let back = decode_request(&json).unwrap();
        prop_assert_eq!(back, request);
    }

    #[test]
    fn reply_roundtrip_is_identity(
        spikes in proptest::collection::vec(0u32..500, 6),
        latency_ns in 0u64..5_000_000_000,
        worker in 0usize..8,
        batch_size in 1usize..17,
        batched in proptest::prelude::any::<bool>(),
        id_sel in 0usize..4,
        shape in 0usize..3,
        queue_limit in 1usize..1024,
    ) {
        let output = SnnOutput {
            potentials: spikes.iter().map(|&s| i64::from(s) - 100).collect(),
            spikes_by_step: (0..3).map(|t| spikes.iter().map(|&s| s > t).collect()).collect(),
            spike_counts: spikes.clone(),
        };
        let envelope = match shape {
            0 => WireReply::Reply(InferenceReply {
                model_id: IDS[id_sel].to_string(),
                predicted: output.predicted_class(),
                output,
                latency: Duration::from_nanos(latency_ns),
                // Queue wait is a portion of the end-to-end latency.
                queue_wait: Duration::from_nanos(latency_ns / 3),
                worker,
                batch_size,
                engine: if batched { EngineKind::Batched } else { EngineKind::Sequential },
                attempts: 1 + (batch_size % 3) as u32,
            }),
            1 => WireReply::Rejected(match worker % 4 {
                0 => RejectReason::UnknownModel { id: IDS[id_sel].to_string() },
                1 => RejectReason::QueueFull { limit: queue_limit },
                2 => RejectReason::DeadlineExpired,
                _ => RejectReason::ShuttingDown,
            }),
            _ => WireReply::Failed {
                message: format!("frame {worker} failed: {latency_ns}"),
                attempts: 1 + (worker % 3) as u32,
            },
        };
        let json = encode_reply(&envelope).unwrap();
        let back = decode_reply(&json).unwrap();
        prop_assert_eq!(back, envelope);
    }
}
