//! Configuration memories: the compiled cycle-by-cycle schedule.
//!
//! "Software-defined configurations are stored in Shenjing's configuration
//! memories, governing the cycle-by-cycle operation of the hardware" (§II).
//! A [`TileProgram`] is one tile's configuration memory content — a sparse
//! map from cycle number to the atomic operations issued in that cycle —
//! and a [`ConfigMemory`] holds the programs of every tile of a chip (or
//! multi-chip deployment addressed by flat mesh coordinates).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use shenjing_core::{CoreCoord, Error, Result};

use crate::ops::AtomicOp;

/// One tile's configuration memory: operations per cycle.
///
/// ```
/// use shenjing_hw::{TileProgram, AtomicOp, NeuronCoreOp};
///
/// let mut prog = TileProgram::new();
/// prog.push(0, AtomicOp::Core(NeuronCoreOp::Acc { banks: 0b1111 }));
/// assert_eq!(prog.op_count(), 1);
/// assert_eq!(prog.last_cycle(), Some(0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TileProgram {
    ops: BTreeMap<u64, Vec<AtomicOp>>,
}

impl TileProgram {
    /// Creates an empty program.
    pub fn new() -> TileProgram {
        TileProgram::default()
    }

    /// Appends an op at `cycle`.
    pub fn push(&mut self, cycle: u64, op: AtomicOp) {
        self.ops.entry(cycle).or_default().push(op);
    }

    /// The ops scheduled at `cycle` (empty slice when idle).
    pub fn ops_at(&self, cycle: u64) -> &[AtomicOp] {
        self.ops.get(&cycle).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The last cycle with any scheduled op, or `None` for an empty
    /// program.
    pub fn last_cycle(&self) -> Option<u64> {
        self.ops.keys().next_back().copied()
    }

    /// Total number of scheduled ops.
    pub fn op_count(&self) -> usize {
        self.ops.values().map(Vec::len).sum()
    }

    /// Whether no op is scheduled.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates `(cycle, op)` pairs in cycle order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &AtomicOp)> {
        self.ops.iter().flat_map(|(&cycle, ops)| ops.iter().map(move |op| (cycle, op)))
    }

    /// Validates that no two ops of the same component family touch
    /// overlapping planes in the same cycle, and that at most one neuron
    /// core op is issued per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSchedule`] at the first violating cycle.
    pub fn validate(&self) -> Result<()> {
        for (&cycle, ops) in &self.ops {
            let mut core_ops = 0usize;
            let ps: Vec<_> = ops
                .iter()
                .filter_map(|op| match op {
                    AtomicOp::Ps(p) => Some(p.planes()),
                    _ => None,
                })
                .collect();
            let spike: Vec<_> = ops
                .iter()
                .filter_map(|op| match op {
                    AtomicOp::Spike(s) => Some(s.planes()),
                    _ => None,
                })
                .collect();
            for op in ops {
                if matches!(op, AtomicOp::Core(_)) {
                    core_ops += 1;
                }
            }
            if core_ops > 1 {
                return Err(Error::InvalidSchedule {
                    cycle,
                    reason: format!("{core_ops} neuron core ops in one cycle"),
                });
            }
            for (i, a) in ps.iter().enumerate() {
                for b in &ps[i + 1..] {
                    if a.intersects(b) {
                        return Err(Error::InvalidSchedule {
                            cycle,
                            reason: "two PS router ops on overlapping planes".into(),
                        });
                    }
                }
            }
            for (i, a) in spike.iter().enumerate() {
                for b in &spike[i + 1..] {
                    if a.intersects(b) {
                        return Err(Error::InvalidSchedule {
                            cycle,
                            reason: "two spike router ops on overlapping planes".into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// The configuration memories of every tile in a deployment, addressed by
/// (flat-mesh) core coordinate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigMemory {
    #[serde(with = "coord_map_serde")]
    programs: BTreeMap<CoreCoord, TileProgram>,
}

/// Serializes the coordinate-keyed map as a sequence of pairs, since JSON
/// map keys must be strings.
mod coord_map_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<CoreCoord, TileProgram>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        ser.collect_seq(map.iter())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<CoreCoord, TileProgram>, D::Error> {
        let pairs: Vec<(CoreCoord, TileProgram)> = serde::Deserialize::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

impl ConfigMemory {
    /// Creates an empty configuration.
    pub fn new() -> ConfigMemory {
        ConfigMemory::default()
    }

    /// Mutable access to (creating if needed) the program of one tile.
    pub fn program_mut(&mut self, coord: CoreCoord) -> &mut TileProgram {
        self.programs.entry(coord).or_default()
    }

    /// The program of one tile, if any ops were scheduled there.
    pub fn program(&self, coord: CoreCoord) -> Option<&TileProgram> {
        self.programs.get(&coord)
    }

    /// Iterates `(coordinate, program)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CoreCoord, &TileProgram)> {
        self.programs.iter().map(|(&c, p)| (c, p))
    }

    /// Coordinates of every tile with a program.
    pub fn coords(&self) -> impl Iterator<Item = CoreCoord> + '_ {
        self.programs.keys().copied()
    }

    /// Number of tiles with at least one op.
    pub fn tile_count(&self) -> usize {
        self.programs.values().filter(|p| !p.is_empty()).count()
    }

    /// The last scheduled cycle across all tiles.
    pub fn last_cycle(&self) -> Option<u64> {
        self.programs.values().filter_map(TileProgram::last_cycle).max()
    }

    /// Total op count across all tiles.
    pub fn op_count(&self) -> usize {
        self.programs.values().map(TileProgram::op_count).sum()
    }

    /// Validates every tile program.
    ///
    /// # Errors
    ///
    /// Returns the first [`Error::InvalidSchedule`] found.
    pub fn validate(&self) -> Result<()> {
        for prog in self.programs.values() {
            prog.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{NeuronCoreOp, PsDst, PsRouterOp, PsSendSource, SpikeRouterOp};
    use crate::plane::PlaneSet;
    use shenjing_core::Direction;

    fn acc() -> AtomicOp {
        AtomicOp::Core(NeuronCoreOp::Acc { banks: 0b1111 })
    }

    fn ps_send(planes: PlaneSet) -> AtomicOp {
        AtomicOp::Ps(PsRouterOp::Send {
            source: PsSendSource::LocalPs,
            dst: PsDst::Port(Direction::North),
            planes,
        })
    }

    #[test]
    fn push_and_query() {
        let mut prog = TileProgram::new();
        assert!(prog.is_empty());
        assert_eq!(prog.last_cycle(), None);
        prog.push(5, acc());
        prog.push(5, ps_send(PlaneSet::all()));
        prog.push(2, acc());
        assert_eq!(prog.op_count(), 3);
        assert_eq!(prog.last_cycle(), Some(5));
        assert_eq!(prog.ops_at(5).len(), 2);
        assert_eq!(prog.ops_at(3).len(), 0);
    }

    #[test]
    fn iter_in_cycle_order() {
        let mut prog = TileProgram::new();
        prog.push(9, acc());
        prog.push(1, acc());
        prog.push(4, acc());
        let cycles: Vec<u64> = prog.iter().map(|(c, _)| c).collect();
        assert_eq!(cycles, vec![1, 4, 9]);
    }

    #[test]
    fn validate_accepts_disjoint_planes() {
        let mut prog = TileProgram::new();
        prog.push(0, ps_send(PlaneSet::from_range(0..8)));
        prog.push(0, ps_send(PlaneSet::from_range(8..16)));
        prog.validate().unwrap();
    }

    #[test]
    fn validate_rejects_overlapping_ps_planes() {
        let mut prog = TileProgram::new();
        prog.push(0, ps_send(PlaneSet::from_range(0..8)));
        prog.push(0, ps_send(PlaneSet::from_range(7..16)));
        assert!(matches!(prog.validate(), Err(Error::InvalidSchedule { cycle: 0, .. })));
    }

    #[test]
    fn validate_rejects_overlapping_spike_planes() {
        let mut prog = TileProgram::new();
        let spike = |planes| AtomicOp::Spike(SpikeRouterOp::Send { dst: Direction::East, planes });
        prog.push(3, spike(PlaneSet::all()));
        prog.push(3, spike(PlaneSet::from_indices([0u16])));
        assert!(matches!(prog.validate(), Err(Error::InvalidSchedule { cycle: 3, .. })));
    }

    #[test]
    fn validate_rejects_two_core_ops() {
        let mut prog = TileProgram::new();
        prog.push(0, acc());
        prog.push(0, acc());
        assert!(prog.validate().is_err());
    }

    #[test]
    fn ps_and_spike_in_same_cycle_are_fine() {
        let mut prog = TileProgram::new();
        prog.push(0, ps_send(PlaneSet::all()));
        prog.push(
            0,
            AtomicOp::Spike(SpikeRouterOp::Send { dst: Direction::East, planes: PlaneSet::all() }),
        );
        prog.push(0, acc());
        prog.validate().unwrap();
    }

    #[test]
    fn config_memory_aggregation() {
        let mut mem = ConfigMemory::new();
        mem.program_mut(CoreCoord::new(0, 0)).push(0, acc());
        mem.program_mut(CoreCoord::new(0, 1)).push(7, acc());
        assert_eq!(mem.tile_count(), 2);
        assert_eq!(mem.last_cycle(), Some(7));
        assert_eq!(mem.op_count(), 2);
        mem.validate().unwrap();
        assert!(mem.program(CoreCoord::new(0, 0)).is_some());
        assert!(mem.program(CoreCoord::new(5, 5)).is_none());
        assert_eq!(mem.coords().count(), 2);
    }

    #[test]
    fn config_memory_validate_propagates() {
        let mut mem = ConfigMemory::new();
        let prog = mem.program_mut(CoreCoord::new(1, 1));
        prog.push(0, acc());
        prog.push(0, acc());
        assert!(mem.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let mut mem = ConfigMemory::new();
        mem.program_mut(CoreCoord::new(0, 0)).push(0, ps_send(PlaneSet::all()));
        let json = serde_json::to_string(&mem).unwrap();
        let back: ConfigMemory = serde_json::from_str(&json).unwrap();
        assert_eq!(mem, back);
    }
}
