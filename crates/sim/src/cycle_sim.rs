//! Executing compiled programs on the hardware component models.

use std::collections::BTreeMap;

use shenjing_core::{ArchSpec, CoreCoord, Error, Result};
use shenjing_hw::{AtomicOp, Chip};
use shenjing_mapper::{CompiledProgram, LogicalMapping};
use shenjing_nn::Tensor;
use shenjing_snn::{RateEncoder, SnnOutput};

/// The cycle-level simulator: a [`Chip`] loaded with a compiled program.
#[derive(Debug, Clone)]
pub struct CycleSim {
    chip: Chip,
    /// Ops per cycle, flattened from the configuration memories.
    schedule: Vec<(u64, Vec<(CoreCoord, AtomicOp)>)>,
    block_cycles: u64,
    input_map: Vec<Vec<(CoreCoord, u16)>>,
    output_map: Vec<(CoreCoord, u16)>,
}

impl CycleSim {
    /// Builds a chip mesh, loads every tile's weights (the `LD_WT` phase)
    /// and thresholds, and indexes the schedule.
    ///
    /// # Errors
    ///
    /// Returns mapping/bounds errors when the program references tiles or
    /// planes outside the mesh.
    pub fn new(
        arch: &ArchSpec,
        mapping: &LogicalMapping,
        program: &CompiledProgram,
    ) -> Result<CycleSim> {
        let mut chip = Chip::new(arch, program.mesh_rows, program.mesh_cols)?;

        // LD_WT: materialize each logical core's weight block into its tile.
        for (coord, core_id) in &program.core_at {
            let core = mapping.core(*core_id);
            let flat = &mapping.flat[core.layer];
            let block = core.materialize_weights(flat);
            chip.tile_mut(*coord)?.core_mut().load_weights(&block)?;
        }
        // Thresholds at fold roots.
        for (coord, plane, threshold) in &program.thresholds {
            chip.tile_mut(*coord)?.spike_mut().set_threshold(*plane, *threshold)?;
        }

        // Index the schedule by cycle.
        let mut by_cycle: BTreeMap<u64, Vec<(CoreCoord, AtomicOp)>> = BTreeMap::new();
        for (coord, prog) in program.config.iter() {
            for (cycle, op) in prog.iter() {
                by_cycle.entry(cycle).or_default().push((coord, op.clone()));
            }
        }

        Ok(CycleSim {
            chip,
            schedule: by_cycle.into_iter().collect(),
            block_cycles: program.block_cycles,
            input_map: program.input_map.clone(),
            output_map: program.output_map.clone(),
        })
    }

    /// The mesh.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Cycles in one timestep block.
    pub fn block_cycles(&self) -> u64 {
        self.block_cycles
    }

    /// Runs one inference frame: `timesteps` of rate-coded input.
    ///
    /// Returns the same [`SnnOutput`] shape as the abstract model so the
    /// two can be compared directly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when the input length differs
    /// from the mapped network's, and propagates any hardware-level
    /// schedule violation (which would indicate a compiler bug).
    pub fn run_frame(&mut self, input: &Tensor, timesteps: u32) -> Result<SnnOutput> {
        if input.len() != self.input_map.len() {
            return Err(Error::shape_mismatch(
                format!("{} inputs", self.input_map.len()),
                format!("{}", input.len()),
            ));
        }
        if timesteps == 0 {
            return Err(Error::config("timesteps must be positive"));
        }
        self.chip.reset_frame();
        let mut encoder = RateEncoder::new(input);
        let out_len = self.output_map.len();
        let mut spike_counts = vec![0u32; out_len];
        let mut spikes_by_step = Vec::with_capacity(timesteps as usize);

        for _ in 0..timesteps {
            // Fresh axons; inject this timestep's input spikes.
            self.chip.clear_axons();
            let spikes = encoder.next_timestep();
            for (i, spiking) in spikes.iter().enumerate() {
                if !spiking {
                    continue;
                }
                for (coord, axon) in &self.input_map[i] {
                    self.chip.tile_mut(*coord)?.core_mut().set_axon(*axon, true)?;
                }
            }

            // Execute the static block.
            let mut idx = 0usize;
            for cycle in 0..self.block_cycles {
                let ops: &[(CoreCoord, AtomicOp)] =
                    if idx < self.schedule.len() && self.schedule[idx].0 == cycle {
                        let ops = &self.schedule[idx].1;
                        idx += 1;
                        ops
                    } else {
                        &[]
                    };
                self.chip.exec_cycle(cycle, ops)?;
            }

            // Read output spikes, then clear network state (potentials
            // persist across timesteps).
            let mut step = vec![false; out_len];
            for (o, (coord, plane)) in self.output_map.iter().enumerate() {
                let fired = self.chip.tile(*coord)?.spike().spike_buffer(*plane);
                step[o] = fired;
                spike_counts[o] += u32::from(fired);
            }
            spikes_by_step.push(step);
            self.chip.reset_network_state();
        }

        let potentials = self
            .output_map
            .iter()
            .map(|(coord, plane)| Ok(i64::from(self.chip.tile(*coord)?.spike().potential(*plane))))
            .collect::<Result<Vec<i64>>>()?;

        Ok(SnnOutput { spike_counts, potentials, spikes_by_step })
    }

    /// Predicted class for one frame.
    ///
    /// # Errors
    ///
    /// See [`run_frame`](CycleSim::run_frame).
    pub fn predict(&mut self, input: &Tensor, timesteps: u32) -> Result<usize> {
        Ok(self.run_frame(input, timesteps)?.predicted_class())
    }

    /// Classification accuracy over a labelled dataset.
    ///
    /// # Errors
    ///
    /// See [`run_frame`](CycleSim::run_frame).
    pub fn evaluate(&mut self, data: &[(Tensor, usize)], timesteps: u32) -> Result<f64> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for (x, y) in data {
            if self.predict(x, timesteps)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shenjing_core::W5;
    use shenjing_mapper::Mapper;
    use shenjing_snn::{SnnLayer, SnnNetwork, SpikingDense};

    fn w(v: i32) -> W5 {
        W5::new(v).unwrap()
    }

    fn build_sim(snn: &SnnNetwork, arch: &ArchSpec) -> CycleSim {
        let mapping = Mapper::new(arch.clone()).map(snn).unwrap();
        CycleSim::new(arch, &mapping.logical, &mapping.program).unwrap()
    }

    #[test]
    fn single_core_dense_matches_hand_computation() {
        // 2 inputs → 2 outputs, weights [[10, -10], [5, 5]], θ = 8.
        let arch = ArchSpec::tiny();
        let weights = vec![w(10), w(-10), w(5), w(5)];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 2, 2, 8, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        // Input [1.0, 0.0]: every step neuron 0 integrates 10 > 8 → fires.
        let input = Tensor::from_vec(vec![2], vec![1.0, 0.0]).unwrap();
        let out = sim.run_frame(&input, 10).unwrap();
        assert_eq!(out.spike_counts[0], 10);
        assert_eq!(out.spike_counts[1], 0);
    }

    #[test]
    fn multi_core_fold_equals_single_core_math() {
        // 40 inputs (3 cores on the tiny arch) all weight 1, θ = 39:
        // when every input spikes the exact PS-NoC sum is 40 > 39 → fire.
        // A lossy (spike-quantized) aggregation could never see 40.
        let arch = ArchSpec::tiny();
        let weights = vec![w(1); 40];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 40, 1, 39, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        let input = Tensor::from_vec(vec![40], vec![1.0; 40]).unwrap();
        let out = sim.run_frame(&input, 5).unwrap();
        assert_eq!(out.spike_counts[0], 5, "exact cross-core sum fires every step");
    }

    #[test]
    fn frames_are_reproducible() {
        let arch = ArchSpec::tiny();
        let weights = vec![w(3); 8 * 4];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 8, 4, 10, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        let input = Tensor::from_vec(vec![8], vec![0.6; 8]).unwrap();
        let a = sim.run_frame(&input, 12).unwrap();
        let b = sim.run_frame(&input, 12).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn input_validation() {
        let arch = ArchSpec::tiny();
        let weights = vec![w(1); 4];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 2, 2, 5, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        assert!(sim.run_frame(&Tensor::zeros(vec![3]), 5).is_err());
        assert!(sim.run_frame(&Tensor::zeros(vec![2]), 0).is_err());
        assert_eq!(sim.evaluate(&[], 5).unwrap(), 0.0);
    }
}
