//! Cycle-level microarchitecture of the Shenjing tile.
//!
//! This crate models, component by component, Figure 2 of the DATE 2020
//! paper:
//!
//! * [`NeuronCore`] — 4 SRAM weight banks, per-neuron accumulators, and the
//!   axon input buffer ((a) in the figure);
//! * [`PsRouter`] — the partial-sum NoC router: 4×2 input crossbar, 16-bit
//!   adder with the `consec_add` operand mux, and 3×5 output crossbar that
//!   can eject the accumulated sum into the spiking logic ((b));
//! * [`SpikeRouter`] — the IF/spiking logic plus the 5×5 one-bit spike
//!   crossbar with multicast support ((c));
//! * [`Tile`] — one of each, wired together;
//! * [`Chip`] — a mesh of tiles with the inter-tile link fabric.
//!
//! Control follows Table I of the paper: every component is driven each
//! cycle by an *atomic operation* ([`ops`]) whose encoding into raw control
//! signals ([`signals`]) round-trips bit-exactly. There are **no buffer
//! queues, no flow control and no routing logic** in the routers — exactly
//! as in the paper, all communication is compiled ahead of time into
//! per-cycle control words stored in a [`ConfigMemory`].
//!
//! Because each of the 256 neurons of a core owns a private plane of both
//! NoCs, router state here is *vectorized over planes*: one [`PsRouter`]
//! value models all 256 single-neuron PS routers of a tile, and operations
//! carry a [`PlaneSet`] selecting which planes participate (the per-plane
//! configuration memories of the real hardware).
//!
//! # Example
//!
//! ```
//! use shenjing_core::{ArchSpec, Direction};
//! use shenjing_hw::{NeuronCore, PlaneSet};
//!
//! let arch = ArchSpec::tiny();
//! let mut core = NeuronCore::new(&arch);
//! // Load a weight, fire the axon, accumulate.
//! core.write_weight(0, 0, shenjing_core::W5::new(3)?)?;
//! core.set_axon(0, true)?;
//! core.accumulate(0b1111)?;
//! assert_eq!(core.local_ps(0).value(), 3);
//! # Ok::<(), shenjing_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod batch;
pub mod chip;
pub mod config;
pub mod lanes;
pub mod neuron_core;
mod occupancy;
pub mod ops;
pub mod parallel;
pub mod phases;
pub mod plane;
pub mod ps_router;
pub mod sched;
pub mod signals;
pub mod spike_router;
pub mod tile;

pub use activity::ActiveSet;
pub use batch::{BatchChip, BatchNeuronCore, BatchPsRouter, BatchSpikeRouter, BatchTile};
pub use chip::Chip;
pub use config::{ConfigMemory, TileProgram};
pub use lanes::LaneSet;
pub use neuron_core::NeuronCore;
pub use ops::{AtomicOp, NeuronCoreOp, PsDst, PsRouterOp, PsSendSource, SpikeRouterOp};
pub use phases::CyclePhases;
pub use plane::PlaneSet;
pub use ps_router::PsRouter;
pub use sched::{CycleOps, PortOut, ScheduledOp, TileGroup};
pub use signals::{ControlWord, NeuronCoreSignals, PsRouterSignals, SpikeRouterSignals};
pub use spike_router::SpikeRouter;
pub use tile::Tile;
