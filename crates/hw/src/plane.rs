//! Selection of NoC planes participating in an operation.
//!
//! Each neuron of a core owns one plane of the PS NoC and one plane of the
//! spike NoC. In hardware every plane has its own configuration memory, so
//! different planes of the same tile can execute different operations in
//! the same cycle (the conv mapping of Fig. 4 relies on this: only boundary
//! neurons exchange partial sums). [`PlaneSet`] is the software rendering
//! of "which per-plane config memories hold this op at this cycle".

use serde::{Deserialize, Serialize};

/// A set of NoC plane indices (equivalently, neuron indices within a core).
///
/// ```
/// use shenjing_hw::PlaneSet;
/// let all = PlaneSet::all();
/// assert!(all.contains(255));
///
/// let some = PlaneSet::from_indices([1u16, 3, 5]);
/// assert!(some.contains(3));
/// assert!(!some.contains(2));
/// assert_eq!(some.len(), 3);
/// assert!(some.intersects(&PlaneSet::from_indices([5u16])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlaneSet {
    /// Every plane of the tile.
    All,
    /// An explicit bitmask of planes; word `i` holds planes `64*i..64*i+64`.
    Mask(Vec<u64>),
}

impl PlaneSet {
    /// The set containing every plane.
    pub fn all() -> PlaneSet {
        PlaneSet::All
    }

    /// The empty set.
    pub fn empty() -> PlaneSet {
        PlaneSet::Mask(Vec::new())
    }

    /// A set with exactly the planes in `indices`.
    pub fn from_indices<I, T>(indices: I) -> PlaneSet
    where
        I: IntoIterator<Item = T>,
        T: Into<u16>,
    {
        let mut words: Vec<u64> = Vec::new();
        for idx in indices {
            let idx = idx.into() as usize;
            let word = idx / 64;
            if words.len() <= word {
                words.resize(word + 1, 0);
            }
            words[word] |= 1u64 << (idx % 64);
        }
        PlaneSet::Mask(words)
    }

    /// A set with the contiguous planes `range`.
    pub fn from_range(range: std::ops::Range<u16>) -> PlaneSet {
        PlaneSet::from_indices(range)
    }

    /// Whether plane `idx` is in the set.
    pub fn contains(&self, idx: u16) -> bool {
        match self {
            PlaneSet::All => true,
            PlaneSet::Mask(words) => {
                let word = idx as usize / 64;
                words.get(word).map(|w| w & (1u64 << (idx as usize % 64)) != 0).unwrap_or(false)
            }
        }
    }

    /// Number of planes selected, given that the tile has `total` planes.
    pub fn count(&self, total: u16) -> usize {
        match self {
            PlaneSet::All => total as usize,
            PlaneSet::Mask(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Number of planes in an explicit mask.
    ///
    /// For [`PlaneSet::All`] the size depends on the tile; use
    /// [`count`](PlaneSet::count) there. This method treats `All` as
    /// unbounded and panics to catch misuse.
    ///
    /// # Panics
    ///
    /// Panics when called on [`PlaneSet::All`].
    pub fn len(&self) -> usize {
        match self {
            PlaneSet::All => panic!("PlaneSet::All has no intrinsic length; use count(total)"),
            PlaneSet::Mask(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Whether the set selects no planes at all.
    pub fn is_empty(&self) -> bool {
        match self {
            PlaneSet::All => false,
            PlaneSet::Mask(words) => words.iter().all(|w| *w == 0),
        }
    }

    /// Whether the two sets share any plane.
    pub fn intersects(&self, other: &PlaneSet) -> bool {
        match (self, other) {
            (PlaneSet::All, o) => !o.is_empty(),
            (s, PlaneSet::All) => !s.is_empty(),
            (PlaneSet::Mask(a), PlaneSet::Mask(b)) => {
                a.iter().zip(b.iter()).any(|(x, y)| x & y != 0)
            }
        }
    }

    /// Grows this set to also contain every plane of `other`.
    ///
    /// Once either side is [`PlaneSet::All`] the union saturates to `All`.
    pub fn union_with(&mut self, other: &PlaneSet) {
        match (&mut *self, other) {
            (PlaneSet::All, _) => {}
            (_, PlaneSet::All) => *self = PlaneSet::All,
            (PlaneSet::Mask(a), PlaneSet::Mask(b)) => {
                if a.len() < b.len() {
                    a.resize(b.len(), 0);
                }
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x |= y;
                }
            }
        }
    }

    /// Iterates the selected plane indices among `0..total`, ascending.
    ///
    /// For [`PlaneSet::All`] this is a plain range; for a mask it walks the
    /// words popping one set bit per step — `O(selected + words)`, not
    /// `O(total)` membership probes. The router `exec` loops run on this
    /// iterator, so it is hot-path code.
    pub fn iter(&self, total: u16) -> PlaneIter<'_> {
        let mode = match self {
            PlaneSet::All => PlaneIterMode::All(0..total),
            PlaneSet::Mask(words) => PlaneIterMode::Mask {
                words,
                word: words.first().copied().unwrap_or(0),
                word_idx: 0,
            },
        };
        PlaneIter { total, mode }
    }
}

/// Iterator over the planes of a [`PlaneSet`], yielded in ascending order
/// (see [`PlaneSet::iter`]).
#[derive(Debug, Clone)]
pub struct PlaneIter<'a> {
    total: u16,
    mode: PlaneIterMode<'a>,
}

#[derive(Debug, Clone)]
enum PlaneIterMode<'a> {
    All(std::ops::Range<u16>),
    Mask { words: &'a [u64], word: u64, word_idx: usize },
}

impl Iterator for PlaneIter<'_> {
    type Item = u16;

    #[inline]
    fn next(&mut self) -> Option<u16> {
        match &mut self.mode {
            PlaneIterMode::All(range) => range.next(),
            PlaneIterMode::Mask { words, word, word_idx } => loop {
                if *word == 0 {
                    *word_idx += 1;
                    match words.get(*word_idx) {
                        Some(&w) => {
                            *word = w;
                            continue;
                        }
                        None => return None,
                    }
                }
                let bit = word.trailing_zeros() as usize;
                *word &= *word - 1; // pop the lowest set bit
                let plane = *word_idx * 64 + bit;
                if plane < self.total as usize {
                    return Some(plane as u16);
                }
                // Mask words may carry bits at or beyond `total`; indices
                // ascend, so the first such bit exhausts the iteration.
                *word = 0;
                *word_idx = words.len();
                return None;
            },
        }
    }
}

impl FromIterator<u16> for PlaneSet {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        PlaneSet::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_everything() {
        let all = PlaneSet::all();
        assert!(all.contains(0));
        assert!(all.contains(65535));
        assert_eq!(all.count(256), 256);
        assert!(!all.is_empty());
    }

    #[test]
    fn empty_set() {
        let e = PlaneSet::empty();
        assert!(!e.contains(0));
        assert!(e.is_empty());
        assert_eq!(e.count(256), 0);
        assert!(!e.intersects(&PlaneSet::all()));
        assert!(!PlaneSet::all().intersects(&e));
    }

    #[test]
    fn from_indices_membership() {
        let s = PlaneSet::from_indices([0u16, 63, 64, 255]);
        for i in [0u16, 63, 64, 255] {
            assert!(s.contains(i), "missing {i}");
        }
        for i in [1u16, 62, 65, 254] {
            assert!(!s.contains(i), "spurious {i}");
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn from_range() {
        let s = PlaneSet::from_range(10..20);
        assert_eq!(s.len(), 10);
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
        assert!(!s.contains(9));
    }

    #[test]
    fn intersection_logic() {
        let a = PlaneSet::from_indices([1u16, 2, 3]);
        let b = PlaneSet::from_indices([3u16, 4]);
        let c = PlaneSet::from_indices([5u16]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(PlaneSet::all().intersects(&a));
        assert!(a.intersects(&PlaneSet::all()));
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let s = PlaneSet::from_indices([5u16, 1, 3]);
        let v: Vec<u16> = s.iter(16).collect();
        assert_eq!(v, vec![1, 3, 5]);
        let all: Vec<u16> = PlaneSet::all().iter(4).collect();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn iter_walks_word_boundaries() {
        // Bits straddling the 64-bit word seams must come out in order.
        let s = PlaneSet::from_indices([0u16, 63, 64, 127, 128, 255]);
        let v: Vec<u16> = s.iter(256).collect();
        assert_eq!(v, vec![0, 63, 64, 127, 128, 255]);
    }

    #[test]
    fn iter_stops_at_total() {
        // Mask bits at or beyond `total` are not yielded, and a bit past
        // the first out-of-range one does not resurrect the iterator.
        let s = PlaneSet::from_indices([2u16, 10, 20, 300]);
        let v: Vec<u16> = s.iter(16).collect();
        assert_eq!(v, vec![2, 10]);
        let mut it = s.iter(16);
        assert_eq!(it.next(), Some(2));
        assert_eq!(it.next(), Some(10));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None, "exhausted iterator stays exhausted");
    }

    #[test]
    fn iter_of_empty_and_all() {
        assert_eq!(PlaneSet::empty().iter(64).count(), 0);
        assert_eq!(PlaneSet::Mask(vec![0, 0, 0]).iter(256).count(), 0);
        let all: Vec<u16> = PlaneSet::all().iter(3).collect();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn collect_from_iterator() {
        let s: PlaneSet = (0u16..4).collect();
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "no intrinsic length")]
    fn len_of_all_panics() {
        let _ = PlaneSet::all().len();
    }

    #[test]
    fn union_with_merges_masks() {
        let mut a = PlaneSet::from_indices([1u16, 64]);
        a.union_with(&PlaneSet::from_indices([2u16, 200]));
        let v: Vec<u16> = a.iter(256).collect();
        assert_eq!(v, vec![1, 2, 64, 200]);

        let mut e = PlaneSet::empty();
        e.union_with(&PlaneSet::from_indices([7u16]));
        assert!(e.contains(7));

        let mut m = PlaneSet::from_indices([3u16]);
        m.union_with(&PlaneSet::all());
        assert_eq!(m, PlaneSet::All);

        let mut all = PlaneSet::all();
        all.union_with(&PlaneSet::empty());
        assert_eq!(all, PlaneSet::All);
    }

    #[test]
    fn beyond_mask_words_not_contained() {
        let s = PlaneSet::from_indices([1u16]);
        assert!(!s.contains(1000));
    }
}
