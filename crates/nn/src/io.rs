//! Model serialization: the toolchain's input format (Fig. 3).
//!
//! The paper's mapping tool consumes a "Layers Description: .json file"
//! plus a "Weight: .bin file". This module reproduces that interface:
//! [`save_network`] writes the layer specs as JSON and the weights as a
//! little-endian `f64` binary blob; [`load_network`] reconstructs the
//! trained network from the two files.

use std::io::{Read, Write};
use std::path::Path;

use shenjing_core::{Error, Result};

use crate::layer::{Layer, LayerSpec};
use crate::network::Network;

/// Magic prefix of the weight blob, for cheap corruption detection.
const WEIGHT_MAGIC: &[u8; 8] = b"SHENJWT1";

fn io_err(e: std::io::Error) -> Error {
    Error::config(format!("model io: {e}"))
}

/// Serializes the layer descriptions to a JSON string.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if serialization fails (it cannot for
/// well-formed specs).
pub fn specs_to_json(specs: &[LayerSpec]) -> Result<String> {
    serde_json::to_string_pretty(specs).map_err(|e| Error::config(format!("specs to json: {e}")))
}

/// Parses layer descriptions from JSON.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for malformed JSON.
pub fn specs_from_json(json: &str) -> Result<Vec<LayerSpec>> {
    serde_json::from_str(json).map_err(|e| Error::config(format!("specs from json: {e}")))
}

/// Flattens all trainable weights of a network, layer by layer (residual
/// bodies inlined), into one vector.
pub fn collect_weights(net: &Network) -> Vec<f64> {
    fn walk(layers: &[Layer], out: &mut Vec<f64>) {
        for layer in layers {
            match layer {
                Layer::Residual(r) => walk(r.body(), out),
                other => out.extend_from_slice(other.weights()),
            }
        }
    }
    let mut out = Vec::new();
    walk(net.layers(), &mut out);
    out
}

/// Writes weights as the `.bin` blob: magic, little-endian `u64` count,
/// then little-endian `f64`s.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] on I/O failure.
pub fn write_weights<W: Write>(mut w: W, weights: &[f64]) -> Result<()> {
    w.write_all(WEIGHT_MAGIC).map_err(io_err)?;
    w.write_all(&(weights.len() as u64).to_le_bytes()).map_err(io_err)?;
    for v in weights {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

/// Reads a `.bin` weight blob.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for a bad magic, truncated data, or
/// I/O failure.
pub fn read_weights<R: Read>(mut r: R) -> Result<Vec<f64>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != WEIGHT_MAGIC {
        return Err(Error::config("weight blob has wrong magic"));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes).map_err(io_err)?;
    let len = u64::from_le_bytes(len_bytes) as usize;
    let mut out = Vec::with_capacity(len);
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf).map_err(io_err)?;
        out.push(f64::from_le_bytes(buf));
    }
    Ok(out)
}

/// Installs a flat weight vector back into a network (inverse of
/// [`collect_weights`]).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when the vector length differs from
/// the network's parameter count.
pub fn install_weights(net: &mut Network, weights: &[f64]) -> Result<()> {
    fn walk(layers: &mut [Layer], weights: &[f64], cursor: &mut usize) -> Result<()> {
        for layer in layers {
            match layer {
                Layer::Residual(r) => walk(r.body_mut(), weights, cursor)?,
                other => {
                    let slot = other.weights_mut();
                    let n = slot.len();
                    let end = *cursor + n;
                    if end > weights.len() {
                        return Err(Error::shape_mismatch(
                            format!("at least {end} weights"),
                            format!("{}", weights.len()),
                        ));
                    }
                    slot.copy_from_slice(&weights[*cursor..end]);
                    *cursor = end;
                }
            }
        }
        Ok(())
    }
    let mut cursor = 0;
    walk(net.layers_mut(), weights, &mut cursor)?;
    if cursor != weights.len() {
        return Err(Error::shape_mismatch(
            format!("{cursor} weights"),
            format!("{}", weights.len()),
        ));
    }
    Ok(())
}

/// Saves a network as `<stem>.json` (layer descriptions) and
/// `<stem>.bin` (weights) — the toolchain's Fig. 3 input files.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] on I/O failure.
pub fn save_network(net: &Network, stem: &Path) -> Result<()> {
    let json = specs_to_json(&net.specs())?;
    std::fs::write(stem.with_extension("json"), json).map_err(io_err)?;
    let file = std::fs::File::create(stem.with_extension("bin")).map_err(io_err)?;
    write_weights(std::io::BufWriter::new(file), &collect_weights(net))
}

/// Loads a network saved by [`save_network`]. Parameters come from the
/// blob, so no seed-dependent initialization is involved.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] / [`Error::ShapeMismatch`] on
/// missing, corrupt or mismatched files.
pub fn load_network(stem: &Path) -> Result<Network> {
    let json = std::fs::read_to_string(stem.with_extension("json")).map_err(io_err)?;
    let specs = specs_from_json(&json)?;
    let mut net = Network::from_specs(&specs, 0)?;
    let file = std::fs::File::open(stem.with_extension("bin")).map_err(io_err)?;
    let weights = read_weights(std::io::BufReader::new(file))?;
    install_weights(&mut net, &weights)?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn sample_net() -> Network {
        Network::from_specs(
            &[
                LayerSpec::conv2d(3, 1, 2),
                LayerSpec::relu(),
                LayerSpec::residual(
                    vec![LayerSpec::conv2d(3, 2, 2), LayerSpec::relu(), LayerSpec::conv2d(3, 2, 2)],
                    1.0,
                ),
                LayerSpec::avg_pool(2),
                LayerSpec::dense(2 * 2 * 2, 3),
            ],
            99,
        )
        .unwrap()
    }

    #[test]
    fn specs_json_roundtrip() {
        let net = sample_net();
        let json = specs_to_json(&net.specs()).unwrap();
        let back = specs_from_json(&json).unwrap();
        assert_eq!(back, net.specs());
        assert!(json.contains("Residual"));
    }

    #[test]
    fn weights_blob_roundtrip() {
        let ws = vec![0.0, -1.5, 3.25, f64::MIN_POSITIVE];
        let mut buf = Vec::new();
        write_weights(&mut buf, &ws).unwrap();
        let back = read_weights(buf.as_slice()).unwrap();
        assert_eq!(back, ws);
    }

    #[test]
    fn corrupt_blob_rejected() {
        assert!(read_weights(&b"NOTMAGIC"[..]).is_err());
        let mut buf = Vec::new();
        write_weights(&mut buf, &[1.0, 2.0]).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_weights(buf.as_slice()).is_err());
    }

    #[test]
    fn collect_install_roundtrip_preserves_forward() {
        let mut net = sample_net();
        let input =
            Tensor::from_vec(vec![4, 4, 1], (0..16).map(|i| i as f64 / 16.0).collect()).unwrap();
        let expected = net.forward(&input).unwrap();

        let weights = collect_weights(&net);
        assert_eq!(weights.len(), net.param_count());
        let mut fresh = Network::from_specs(&net.specs(), 12345).unwrap();
        assert_ne!(collect_weights(&fresh), weights, "different init");
        install_weights(&mut fresh, &weights).unwrap();
        let got = fresh.forward(&input).unwrap();
        assert_eq!(got, expected, "installed weights reproduce outputs exactly");
    }

    #[test]
    fn install_validates_length() {
        let mut net = sample_net();
        let weights = collect_weights(&net);
        assert!(install_weights(&mut net, &weights[1..]).is_err());
        let mut extended = weights.clone();
        extended.push(0.0);
        assert!(install_weights(&mut net, &extended).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("shenjing_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("model");
        let mut net = sample_net();
        save_network(&net, &stem).unwrap();
        let mut loaded = load_network(&stem).unwrap();
        let input = Tensor::from_vec(vec![4, 4, 1], vec![0.3; 16]).unwrap();
        assert_eq!(net.forward(&input).unwrap(), loaded.forward(&input).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
