//! The serialized wire format requests and replies round-trip through.
//!
//! A serving tier is only a *tier* if something can sit on the other
//! side of a wire from it: this module pins the JSON encoding of
//! [`InferenceRequest`] and of a reply envelope ([`WireReply`]) that
//! carries either a full [`InferenceReply`] or a typed failure — so a
//! remote client sees the same [`RejectReason`] a local caller matches
//! on. The encoding is exercised end to end by the `loadgen` bench
//! (every generated request is encoded, decoded, then submitted) and
//! pinned by the round-trip proptests in `tests/wire_roundtrip.rs`.
//!
//! ```
//! use shenjing_nn::Tensor;
//! use shenjing_runtime::wire;
//! use shenjing_runtime::InferenceRequest;
//!
//! let request = InferenceRequest::new("digits", Tensor::zeros(vec![4]));
//! let json = wire::encode_request(&request)?;
//! assert_eq!(wire::decode_request(&json)?, request);
//! # Ok::<(), shenjing_core::Error>(())
//! ```

use shenjing_core::{Error, RejectReason, Result};

use crate::server::{InferenceReply, InferenceRequest};

/// The reply envelope a serving endpoint writes back: one frame's full
/// reply, a typed admission rejection, or an execution failure rendered
/// as its message.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WireReply {
    /// The request was served; the full reply rides along.
    Reply(InferenceReply),
    /// Admission control or deadline enforcement refused the request;
    /// the typed reason survives the wire.
    Rejected(RejectReason),
    /// Execution failed; only the error's rendered message crosses the
    /// wire (the full [`Error`] enum carries non-serializable detail).
    Failed {
        /// The failure, as displayed by the error it came from.
        message: String,
        /// Executions performed before the runtime gave up: `> 1` when
        /// replica faults were retried, `1` when the first attempt's
        /// failure was terminal.
        attempts: u32,
    },
}

impl WireReply {
    /// Wraps a runtime verdict for the wire, preserving typed rejection
    /// reasons and collapsing other errors to their display form.
    pub fn from_result(result: Result<InferenceReply>) -> WireReply {
        match result {
            Ok(reply) => WireReply::Reply(reply),
            Err(Error::Rejected { reason }) => WireReply::Rejected(reason),
            Err(e) => {
                let attempts = match &e {
                    Error::ReplicaFault { attempts, .. } => *attempts,
                    _ => 1,
                };
                WireReply::Failed { message: e.to_string(), attempts }
            }
        }
    }

    /// Unwraps a decoded envelope back into a caller-side verdict.
    ///
    /// # Errors
    ///
    /// [`Rejected`](WireReply::Rejected) becomes
    /// [`Error::Rejected`] with the original reason;
    /// [`Failed`](WireReply::Failed) becomes
    /// [`Error::InvalidControl`] carrying the remote message.
    pub fn into_result(self) -> Result<InferenceReply> {
        match self {
            WireReply::Reply(reply) => Ok(reply),
            WireReply::Rejected(reason) => Err(Error::rejected(reason)),
            WireReply::Failed { message, attempts: _ } => {
                Err(Error::InvalidControl { component: "remote runtime".into(), reason: message })
            }
        }
    }
}

/// Encodes a request for the wire.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when serialization fails.
pub fn encode_request(request: &InferenceRequest) -> Result<String> {
    serde_json::to_string(request).map_err(|e| Error::config(format!("encode request: {e}")))
}

/// Decodes a request off the wire.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for malformed input.
pub fn decode_request(json: &str) -> Result<InferenceRequest> {
    serde_json::from_str(json).map_err(|e| Error::config(format!("decode request: {e}")))
}

/// Encodes a reply envelope for the wire.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when serialization fails.
pub fn encode_reply(reply: &WireReply) -> Result<String> {
    serde_json::to_string(reply).map_err(|e| Error::config(format!("encode reply: {e}")))
}

/// Decodes a reply envelope off the wire.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for malformed input.
pub fn decode_reply(json: &str) -> Result<WireReply> {
    serde_json::from_str(json).map_err(|e| Error::config(format!("decode reply: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn request_roundtrip_preserves_every_field() {
        let request = InferenceRequest::new(
            "cifar",
            shenjing_nn::Tensor::from_vec(vec![4], vec![0.0, 0.25, 0.5, 1.0]).unwrap(),
        )
        .with_deadline(Duration::from_micros(1_500))
        .with_priority(7);
        let json = encode_request(&request).unwrap();
        assert_eq!(decode_request(&json).unwrap(), request);
    }

    #[test]
    fn rejection_reasons_survive_the_wire_typed() {
        for reason in [
            RejectReason::UnknownModel { id: "ghost".into() },
            RejectReason::QueueFull { limit: 64 },
            RejectReason::DeadlineExpired,
            RejectReason::ShuttingDown,
        ] {
            let envelope = WireReply::from_result(Err(Error::rejected(reason.clone())));
            let json = encode_reply(&envelope).unwrap();
            let back = decode_reply(&json).unwrap();
            assert_eq!(back, envelope);
            assert_eq!(back.into_result().unwrap_err().reject_reason(), Some(&reason));
        }
    }

    #[test]
    fn non_rejection_failures_collapse_to_messages() {
        let envelope = WireReply::from_result(Err(Error::config("boom")));
        let json = encode_reply(&envelope).unwrap();
        match decode_reply(&json).unwrap() {
            WireReply::Failed { message, attempts } => {
                assert_eq!(message, "invalid configuration: boom");
                assert_eq!(attempts, 1);
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn replica_faults_carry_their_attempt_count_across_the_wire() {
        let fault = Error::ReplicaFault { worker: 2, attempts: 3, reason: "injected panic".into() };
        let envelope = WireReply::from_result(Err(fault));
        let json = encode_reply(&envelope).unwrap();
        match decode_reply(&json).unwrap() {
            WireReply::Failed { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        assert!(decode_request("{not json").is_err());
        assert!(decode_reply("42").is_err());
    }
}
