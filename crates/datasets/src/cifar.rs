//! The CIFAR-like synthetic texture dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shenjing_nn::Tensor;

use crate::split::LabelledImage;

/// Image side length — CIFAR-10's 32×32 after the paper's center-crop
/// to 24×24.
pub const SIDE: usize = 24;
/// Color channels.
pub const CHANNELS: usize = 3;

/// Generator of CIFAR-like 10-class color images.
///
/// Each class is a parametric texture family (oriented gratings at
/// different angles/frequencies, checkerboards, radial blobs, diagonal
/// ramps) rendered with per-image random phase, a class-tinted but
/// per-image-varied color palette, and additive noise. The task is
/// markedly harder than [`SynthDigits`](crate::SynthDigits) — mirroring
/// how CIFAR-10 is markedly harder than MNIST — so the accuracy ordering
/// of Table IV (MNIST nets high, CIFAR nets lower) is preserved.
#[derive(Debug, Clone)]
pub struct SynthCifar {
    seed: u64,
}

impl SynthCifar {
    /// Creates a generator with a dataset seed.
    pub fn new(seed: u64) -> SynthCifar {
        SynthCifar { seed }
    }

    /// Generates `n` labelled images, cycling through the 10 classes.
    pub fn generate(&self, n: usize) -> Vec<LabelledImage> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..n)
            .map(|i| {
                let label = i % 10;
                (self.render(label, &mut rng), label)
            })
            .collect()
    }

    /// Renders one image of `class` using randomness from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= 10`.
    pub fn render(&self, class: usize, rng: &mut StdRng) -> Tensor {
        assert!(class < 10, "class must be 0..10");
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let tint: [f64; 3] = class_tint(class, rng);
        let noise_amp = 0.12;

        let mut img = vec![0.0f64; SIDE * SIDE * CHANNELS];
        for y in 0..SIDE {
            for x in 0..SIDE {
                let u = x as f64 / SIDE as f64;
                let v = y as f64 / SIDE as f64;
                let base = pattern_value(class, u, v, phase);
                for c in 0..CHANNELS {
                    let noise: f64 = rng.gen_range(-noise_amp..noise_amp);
                    let val = (base * tint[c] + noise).clamp(0.0, 1.0);
                    img[(y * SIDE + x) * CHANNELS + c] = val;
                }
            }
        }
        Tensor::from_vec(vec![SIDE, SIDE, CHANNELS], img).expect("shape matches buffer")
    }
}

/// The spatial pattern of each class, in `[0, 1]`.
fn pattern_value(class: usize, u: f64, v: f64, phase: f64) -> f64 {
    use std::f64::consts::TAU;
    let s = |x: f64| 0.5 + 0.5 * x; // [-1,1] → [0,1]
    match class {
        // 0–3: gratings at four orientations, medium frequency.
        0 => s((TAU * 3.0 * u + phase).sin()),
        1 => s((TAU * 3.0 * v + phase).sin()),
        2 => s((TAU * 2.5 * (u + v) + phase).sin()),
        3 => s((TAU * 2.5 * (u - v) + phase).sin()),
        // 4: high-frequency horizontal grating (frequency separates it
        // from class 0).
        4 => s((TAU * 6.0 * u + phase).sin()),
        // 5: checkerboard.
        5 => s((TAU * 3.0 * u + phase).sin() * (TAU * 3.0 * v + phase).sin()),
        // 6: centered radial blob.
        6 => {
            let d = ((u - 0.5).powi(2) + (v - 0.5).powi(2)).sqrt();
            (1.0 - 3.0 * d).clamp(0.0, 1.0)
        }
        // 7: ring.
        7 => {
            let d = ((u - 0.5).powi(2) + (v - 0.5).powi(2)).sqrt();
            (1.0 - 12.0 * (d - 0.3).abs()).clamp(0.0, 1.0)
        }
        // 8: diagonal ramp.
        8 => ((u + v) / 2.0 + 0.15 * (phase.sin())).clamp(0.0, 1.0),
        // 9: radial grating.
        9 => {
            let d = ((u - 0.5).powi(2) + (v - 0.5).powi(2)).sqrt();
            s((TAU * 5.0 * d + phase).sin())
        }
        _ => unreachable!("class checked by caller"),
    }
}

/// A class-characteristic color tint with per-image variation.
fn class_tint(class: usize, rng: &mut StdRng) -> [f64; 3] {
    let base: [f64; 3] = match class % 5 {
        0 => [1.0, 0.4, 0.4],
        1 => [0.4, 1.0, 0.4],
        2 => [0.4, 0.4, 1.0],
        3 => [1.0, 1.0, 0.4],
        _ => [0.7, 0.7, 0.7],
    };
    let mut tint = [0.0f64; 3];
    for (t, b) in tint.iter_mut().zip(base) {
        let jitter: f64 = rng.gen_range(-0.15..0.15);
        *t = (b + jitter).clamp(0.1, 1.0);
    }
    tint
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = SynthCifar::new(9).generate(20);
        let b = SynthCifar::new(9).generate(20);
        for ((ia, la), (ib, lb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(ia.data(), ib.data());
        }
    }

    #[test]
    fn shape_and_range() {
        let ds = SynthCifar::new(0).generate(10);
        for (img, label) in &ds {
            assert_eq!(img.shape(), &[24, 24, 3]);
            assert!(*label < 10);
            assert!(img.data().iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn classes_are_statistically_distinct() {
        let ds = SynthCifar::new(7).generate(200);
        let mut means = vec![vec![0.0f64; SIDE * SIDE * CHANNELS]; 10];
        let mut counts = [0usize; 10];
        for (img, label) in &ds {
            counts[*label] += 1;
            for (m, v) in means[*label].iter_mut().zip(img.data()) {
                *m += v;
            }
        }
        for (m, c) in means.iter_mut().zip(counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
        };
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert!(
                    dist(&means[i], &means[j]) > 0.5,
                    "classes {i} and {j} indistinguishable ({})",
                    dist(&means[i], &means[j])
                );
            }
        }
    }

    #[test]
    fn per_image_variation_within_class() {
        let gen = SynthCifar::new(11);
        let mut rng = StdRng::seed_from_u64(100);
        let a = gen.render(0, &mut rng);
        let b = gen.render(0, &mut rng);
        assert_ne!(a.data(), b.data(), "phase/tint/noise vary per image");
    }

    #[test]
    #[should_panic(expected = "class must be 0..10")]
    fn class_bound_enforced() {
        let mut rng = StdRng::seed_from_u64(0);
        SynthCifar::new(0).render(10, &mut rng);
    }
}
