//! Baselines: what Shenjing's partial-sum NoCs are compared against.
//!
//! * [`blockwise`] — an executable model of the *block-level spike
//!   aggregation* used by prior SNN hardware (§II "Reconfigurability and
//!   accuracy"; §VI on TrueNorth/Tianji): when a layer does not fit in
//!   one core, each core thresholds its **partial** sum and fires spikes,
//!   and an aggregating core re-integrates those quantized spikes. The
//!   information lost at the per-core thresholding step is exactly the
//!   accuracy loss Shenjing's exact in-network addition eliminates.
//! * [`comparison`] — the Table V literature comparison data (SNNwt,
//!   SpiNNaker, Tianji, TrueNorth) with a slot for our measured row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockwise;
pub mod comparison;

pub use blockwise::BlockwiseSnn;
pub use comparison::{paper_rows, ComparisonRow};
