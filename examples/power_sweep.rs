//! Fig. 5 — the throughput / frequency / power tradeoff of a single tile
//! — plus the §IV area budget.
//!
//! Run with: `cargo run --release --example power_sweep`

use shenjing::power::tile_model::FIG5_POINTS;
use shenjing::prelude::*;

fn main() {
    let model = TileModel::paper();
    println!(
        "fitted tile model: P(f) = {:.1} µW + {:.3} nJ/cycle × f",
        model.static_uw, model.energy_per_cycle_nj
    );
    println!("\nFig. 5 sweep (MNIST MLP, T = 20, ~150 cycles/timestep):");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>10}",
        "fps", "freq (kHz)", "paper (kHz)", "model (µW)", "paper(µW)"
    );
    for (fps, paper_khz, paper_uw) in FIG5_POINTS {
        let freq = TileModel::frequency_for(f64::from(fps), 20, 152);
        let power = model.power_uw(freq);
        println!("{fps:>6} {:>12.1} {paper_khz:>14.0} {power:>14.1} {paper_uw:>10.0}", freq / 1e3,);
    }

    let area = AreaBudget::paper();
    println!("\n§IV area budget (28nm):");
    println!("  tile: {:.2} mm², {:.3} M gates", area.tile_mm2, area.tile_mgates);
    println!(
        "  routers {:.3} mm² ({:.0}%), SRAM {:.3} mm² ({:.0}%), other {:.3} mm²",
        area.router_mm2(),
        area.router_fraction * 100.0,
        area.sram_mm2(),
        area.sram_fraction * 100.0,
        area.other_mm2(),
    );
    println!(
        "  die {:.0}x{:.0} mm → {}x{} grid = {} tiles",
        area.die_side_mm,
        area.die_side_mm,
        area.tiles_per_side(),
        area.tiles_per_side(),
        area.tiles_per_die(),
    );
}
