//! Deterministic rate coding of analog inputs into spike trains.

use shenjing_core::{Error, Result};
use shenjing_nn::Tensor;

/// Encodes an analog vector in `[0, 1]` into spike trains of a given
/// length using deterministic rate coding: each input behaves as an IF
//  neuron with unit threshold driven by a constant current equal to the
/// pixel intensity, so over `T` timesteps a pixel of intensity `p` emits
/// `floor(p·T + ε)` spikes, evenly spread.
///
/// Determinism matters twice: it makes experiments reproducible, and it is
/// what the host would actually feed the chip (the spike train is computed
/// off-chip either way).
///
/// ```
/// use shenjing_snn::RateEncoder;
/// use shenjing_nn::Tensor;
///
/// let mut enc = RateEncoder::new(&Tensor::from_vec(vec![2], vec![1.0, 0.5])?);
/// let mut counts = [0u32; 2];
/// for _ in 0..10 {
///     for (c, s) in counts.iter_mut().zip(enc.next_timestep()) {
///         *c += u32::from(s);
///     }
/// }
/// assert_eq!(counts, [10, 5]);
/// # Ok::<(), shenjing_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct RateEncoder {
    intensities: Vec<f64>,
    accumulators: Vec<f64>,
}

impl RateEncoder {
    /// Creates an encoder over the flattened input tensor. Intensities are
    /// clamped into `[0, 1]`.
    pub fn new(input: &Tensor) -> RateEncoder {
        let intensities: Vec<f64> = input.data().iter().map(|v| v.clamp(0.0, 1.0)).collect();
        let accumulators = vec![0.0; intensities.len()];
        RateEncoder { intensities, accumulators }
    }

    /// Number of input lines.
    pub fn len(&self) -> usize {
        self.intensities.len()
    }

    /// Whether the encoder drives no lines.
    pub fn is_empty(&self) -> bool {
        self.intensities.is_empty()
    }

    /// Produces the spike vector for the next timestep.
    pub fn next_timestep(&mut self) -> Vec<bool> {
        self.accumulators
            .iter_mut()
            .zip(&self.intensities)
            .map(|(acc, p)| {
                *acc += p;
                // Tiny epsilon so p = 1.0 fires every step despite float
                // rounding.
                if *acc >= 1.0 - 1e-9 {
                    *acc -= 1.0;
                    true
                } else {
                    false
                }
            })
            .collect()
    }

    /// Restarts the accumulators (new frame of the same image).
    pub fn reset(&mut self) {
        self.accumulators.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Precomputes the whole train: `trains[t][i]` is line `i` at step `t`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `timesteps` is zero.
    pub fn train(&mut self, timesteps: u32) -> Result<Vec<Vec<bool>>> {
        if timesteps == 0 {
            return Err(Error::config("spike train length must be positive"));
        }
        self.reset();
        Ok((0..timesteps).map(|_| self.next_timestep()).collect())
    }
}

/// Stochastic (Bernoulli) rate coding: each line spikes independently
/// with probability equal to its intensity at every timestep.
///
/// This is the textbook alternative to the deterministic encoder; it is
/// seeded, so experiments remain reproducible, but individual trains are
/// noisy — accuracy at short `T` is typically a little worse than with
/// [`RateEncoder`], which is why the deterministic encoder is the
/// default throughout this reproduction.
///
/// ```
/// use shenjing_snn::encode::BernoulliEncoder;
/// use shenjing_nn::Tensor;
///
/// let mut enc = BernoulliEncoder::new(&Tensor::from_vec(vec![1], vec![0.5])?, 7);
/// let train = enc.train(1000)?;
/// let count = train.iter().filter(|s| s[0]).count();
/// assert!((400..600).contains(&count), "≈ half the steps spike");
/// # Ok::<(), shenjing_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct BernoulliEncoder {
    intensities: Vec<f64>,
    rng: rand::rngs::StdRng,
    seed: u64,
}

impl BernoulliEncoder {
    /// Creates a seeded stochastic encoder over the flattened input.
    pub fn new(input: &Tensor, seed: u64) -> BernoulliEncoder {
        use rand::SeedableRng;
        BernoulliEncoder {
            intensities: input.data().iter().map(|v| v.clamp(0.0, 1.0)).collect(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Number of input lines.
    pub fn len(&self) -> usize {
        self.intensities.len()
    }

    /// Whether the encoder drives no lines.
    pub fn is_empty(&self) -> bool {
        self.intensities.is_empty()
    }

    /// Produces the spike vector for the next timestep.
    pub fn next_timestep(&mut self) -> Vec<bool> {
        use rand::Rng;
        self.intensities.iter().map(|p| self.rng.gen_bool(*p)).collect()
    }

    /// Restarts the random stream from the seed (same train again).
    pub fn reset(&mut self) {
        use rand::SeedableRng;
        self.rng = rand::rngs::StdRng::seed_from_u64(self.seed);
    }

    /// Precomputes a whole train.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `timesteps` is zero.
    pub fn train(&mut self, timesteps: u32) -> Result<Vec<Vec<bool>>> {
        if timesteps == 0 {
            return Err(Error::config("spike train length must be positive"));
        }
        self.reset();
        Ok((0..timesteps).map(|_| self.next_timestep()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(v: Vec<f64>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(vec![n], v).unwrap()
    }

    #[test]
    fn bernoulli_rates_converge() {
        let mut enc = BernoulliEncoder::new(&tensor(vec![0.2, 0.8]), 11);
        let train = enc.train(2000).unwrap();
        let c0 = train.iter().filter(|s| s[0]).count() as f64 / 2000.0;
        let c1 = train.iter().filter(|s| s[1]).count() as f64 / 2000.0;
        assert!((c0 - 0.2).abs() < 0.05, "rate {c0}");
        assert!((c1 - 0.8).abs() < 0.05, "rate {c1}");
    }

    #[test]
    fn bernoulli_is_seeded_and_resettable() {
        let mut a = BernoulliEncoder::new(&tensor(vec![0.5; 4]), 3);
        let mut b = BernoulliEncoder::new(&tensor(vec![0.5; 4]), 3);
        assert_eq!(a.train(50).unwrap(), b.train(50).unwrap());
        let first = a.train(50).unwrap();
        let second = a.train(50).unwrap();
        assert_eq!(first, second, "reset restarts the stream");
        let mut c = BernoulliEncoder::new(&tensor(vec![0.5; 4]), 4);
        assert_ne!(a.train(50).unwrap(), c.train(50).unwrap());
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn bernoulli_rejects_zero_steps() {
        let mut enc = BernoulliEncoder::new(&tensor(vec![0.5]), 0);
        assert!(enc.train(0).is_err());
    }

    #[test]
    fn rates_match_intensity() {
        let mut enc = RateEncoder::new(&tensor(vec![0.0, 0.25, 0.5, 0.75, 1.0]));
        let t = 40;
        let train = enc.train(t).unwrap();
        let counts: Vec<u32> =
            (0..5).map(|i| train.iter().filter(|step| step[i]).count() as u32).collect();
        assert_eq!(counts, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn spikes_are_evenly_spread() {
        let mut enc = RateEncoder::new(&tensor(vec![0.5]));
        let train = enc.train(8).unwrap();
        let pattern: Vec<bool> = train.iter().map(|s| s[0]).collect();
        // Every other step, not 4 consecutive spikes then silence.
        assert_eq!(pattern, vec![false, true, false, true, false, true, false, true]);
    }

    #[test]
    fn out_of_range_values_clamped() {
        let mut enc = RateEncoder::new(&tensor(vec![-0.5, 2.0]));
        let train = enc.train(4).unwrap();
        let c0 = train.iter().filter(|s| s[0]).count();
        let c1 = train.iter().filter(|s| s[1]).count();
        assert_eq!(c0, 0);
        assert_eq!(c1, 4);
    }

    #[test]
    fn reset_restarts_deterministically() {
        let mut enc = RateEncoder::new(&tensor(vec![0.3, 0.7]));
        let a = enc.train(10).unwrap();
        let b = enc.train(10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_timesteps_rejected() {
        let mut enc = RateEncoder::new(&tensor(vec![0.5]));
        assert!(enc.train(0).is_err());
    }

    #[test]
    fn len_and_empty() {
        let enc = RateEncoder::new(&tensor(vec![0.1; 7]));
        assert_eq!(enc.len(), 7);
        assert!(!enc.is_empty());
    }
}
