//! Quickstart: train a small digit classifier, convert it to a spiking
//! network, map it onto Shenjing, and confirm that the cycle-level
//! hardware simulation reproduces the abstract SNN bit for bit.
//!
//! Run with: `cargo run --release --example quickstart`

use shenjing::datasets::{flatten_images, train_test_split};
use shenjing::prelude::*;
use shenjing::snn::convert_with_report;

fn main() -> Result<()> {
    // 1. Data: deterministic synthetic digits (MNIST stand-in).
    let data = SynthDigits::new(42).generate(400);
    let (train, test) = train_test_split(data, 0.8);
    let train = flatten_images(&train);
    let test = flatten_images(&test);

    // 2. Train a small MLP.
    println!("training a 784-64-10 MLP on {} synthetic digits...", train.len());
    let mut ann = Network::from_specs(
        &[LayerSpec::dense(784, 64), LayerSpec::relu(), LayerSpec::dense(64, 10)],
        1,
    )?;
    let report = Sgd::new(0.02, 6, 9).train(&mut ann, &train)?;
    println!("  train accuracy: {:.1}%", report.final_train_accuracy * 100.0);
    let ann_acc = shenjing::nn::train::accuracy(&mut ann, &test)?;
    println!("  ANN test accuracy: {:.1}%", ann_acc * 100.0);

    // 3. Convert to an abstract SNN (data-based normalization + 5-bit
    //    quantization).
    let calib: Vec<Tensor> = train.iter().take(32).map(|(x, _)| x.clone()).collect();
    let (mut snn, conv_report) =
        convert_with_report(&mut ann, &calib, &ConversionOptions::default())?;
    println!("converted: {} spiking layers", conv_report.thresholds.len());
    for (desc, theta) in conv_report.descriptions.iter().zip(&conv_report.thresholds) {
        println!("  {desc}: θ = {theta}");
    }
    let timesteps = 20; // the paper's MNIST spike-train length
    let snn_acc = snn.evaluate(&test, timesteps)?;
    println!("  abstract SNN test accuracy (T={timesteps}): {:.1}%", snn_acc * 100.0);

    // 4. Map onto the paper's architecture (256x256 cores, 28x28 chips).
    let arch = ArchSpec::paper();
    let mapping = Mapper::new(arch.clone()).map(&snn)?;
    println!(
        "mapped onto {} cores ({} chip(s)), {} cycles per timestep",
        mapping.logical.total_cores(),
        mapping.placement.chips,
        mapping.program.stats.pipelined_cycles_per_timestep,
    );

    // 5. Cycle-level simulation must agree with the abstract model
    //    exactly — the paper's zero-loss mapping claim.
    let mut sim = CycleSim::new(&arch, &mapping.logical, &mapping.program)?;
    let probe: Vec<Tensor> = test.iter().take(10).map(|(x, _)| x.clone()).collect();
    let eq = shenjing::sim::verify(&mut snn, &mut sim, &probe, timesteps)?;
    println!(
        "equivalence: {}/{} frames bit-exact ({})",
        eq.exact_frames,
        eq.frames,
        if eq.is_exact() { "zero mapping loss confirmed" } else { "MISMATCH" },
    );
    assert!(eq.is_exact());
    Ok(())
}
