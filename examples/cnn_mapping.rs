//! Mapping the convolutional benchmarks (Table III b–d) at full scale:
//! core counts, chip counts, mapping time and projected power — the
//! structural half of Table IV, without the multi-hour training runs.
//!
//! Run with: `cargo run --release --example cnn_mapping`

use std::time::Instant;

use shenjing::prelude::*;
use shenjing::snn::snn_from_specs;

fn main() -> Result<()> {
    let arch = ArchSpec::paper();
    println!(
        "mapping the Table III topologies onto {}x{}-tile chips...\n",
        arch.chip_rows, arch.chip_cols
    );
    println!(
        "{:<16} {:>8} {:>8} {:>7} {:>10} {:>12} {:>12} {:>10}",
        "network", "cores", "paper", "chips", "freq", "power (mW)", "mJ/frame", "map (ms)"
    );

    for kind in [NetworkKind::MnistCnn, NetworkKind::CifarCnn, NetworkKind::CifarResNet] {
        let snn = snn_from_specs(&kind.specs(), kind.input_shape(), 7)?;
        let t0 = Instant::now();
        let mapping = Mapper::new(arch.clone()).map(&snn)?;
        let elapsed = t0.elapsed().as_millis();

        let timesteps = kind.paper_timesteps();
        let fps = f64::from(kind.paper_fps());
        let est = SystemEstimate::from_stats(
            &EnergyModel::paper(),
            &TileModel::paper(),
            &mapping.program.stats,
            mapping.logical.total_cores(),
            mapping.placement.chips,
            timesteps,
            fps,
        );
        println!(
            "{:<16} {:>8} {:>8} {:>7} {:>7.2} MHz {:>12.2} {:>12.3} {:>10}",
            kind.label(),
            est.cores,
            kind.paper_core_count(),
            est.chips,
            est.frequency_hz / 1e6,
            est.power.total_mw(),
            est.mj_per_frame,
            elapsed,
        );
    }

    println!("\npaper reference (Table IV): MNIST CNN 705 cores / 87.54 mW,");
    println!("CIFAR-10 CNN 2977 cores (4 chips) / 456.71 mW,");
    println!("CIFAR-10 ResNet 5863 cores (8 chips) / 887.81 mW.");
    Ok(())
}
