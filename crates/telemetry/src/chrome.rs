//! Chrome-trace-format (Perfetto-loadable) export of sampled spans.
//!
//! The exporter renders every request as its own track (`tid` =
//! request id): a named thread-metadata event, one parent `"X"` slice
//! covering admitted → replied, five lifecycle child slices (queued,
//! plan, execute, drain, reply), and — when the carrying batch was
//! profiled — four engine-phase slices (acc, send, transfer, drain)
//! laid out sequentially inside the execute window, scaled to their
//! measured share of the pass. Children are constructed end-to-start,
//! so phase timestamps are monotone and non-overlapping per request
//! *by construction*; [`validate`] re-checks that on a parsed trace.
//!
//! The JSON shape is pinned by typed structs that both serialize and
//! deserialize through the vendored `serde_json`, so a dumped trace can
//! be round-trip-validated (`bench_gate trace-check`) without a schema.

use shenjing_core::{Error, Result};

use crate::span::SpanRecord;

/// The single process id every event reports.
pub const TRACE_PID: u64 = 1;

/// A Chrome "JSON Object Format" trace: the one key Perfetto needs.
#[allow(non_snake_case)]
#[derive(Debug, Default, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChromeTrace {
    /// The flat event list (`X` duration slices plus `M` metadata).
    pub traceEvents: Vec<ChromeEvent>,
}

/// One trace event. Every field is always emitted (the vendored serde
/// derive treats missing keys as errors on the way back in), matching
/// the subset of the Chrome trace-event schema the viewers read.
#[derive(Debug, Default, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChromeEvent {
    /// Slice label ("queued", "acc", the model id, …).
    pub name: String,
    /// Event category: `"request"`, `"lifecycle"`, or `"engine"`.
    pub cat: String,
    /// Phase type: `"X"` (complete slice) or `"M"` (metadata).
    pub ph: String,
    /// Start, microseconds since the telemetry epoch.
    pub ts: f64,
    /// Duration in microseconds (zero for metadata).
    pub dur: f64,
    /// Process id (always [`TRACE_PID`]).
    pub pid: u64,
    /// Thread id: the request id, giving each request its own track.
    pub tid: u64,
    /// Structured payload shown in the viewer's detail pane.
    pub args: EventArgs,
}

/// Event payload. All keys are always present (`null` when not
/// applicable) so the typed deserializer can validate any event.
#[derive(Debug, Default, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventArgs {
    /// Track name (thread-metadata events only).
    pub name: Option<String>,
    /// Model id (request slices).
    pub model: Option<String>,
    /// Carrying engine (request slices).
    pub engine: Option<String>,
    /// Worker shard (request slices).
    pub worker: Option<u64>,
    /// Frames in the carrying batch (request slices).
    pub batch_size: Option<u64>,
    /// Executions performed before the reply (request slices; > 1 when
    /// replica faults forced retries).
    pub attempts: Option<u64>,
    /// Profiled passes (execute slices).
    pub passes: Option<u64>,
    /// Profiled timesteps (execute slices).
    pub timesteps: Option<u64>,
    /// Profiled cycles (execute slices).
    pub cycles: Option<u64>,
    /// Active-axon timestep sum (execute slices).
    pub active_axon_steps: Option<u64>,
    /// Occupied-lane pass sum (execute slices).
    pub occupied_lane_steps: Option<u64>,
    /// Measured nanoseconds behind a scaled phase slice (engine
    /// slices) — the unscaled value the slice width was derived from.
    pub phase_ns: Option<u64>,
}

fn slice(name: &str, cat: &str, ts: f64, dur: f64, tid: u64, args: EventArgs) -> ChromeEvent {
    ChromeEvent {
        name: name.to_string(),
        cat: cat.to_string(),
        ph: "X".to_string(),
        ts,
        dur,
        pid: TRACE_PID,
        tid,
        args,
    }
}

/// Renders sampled spans as a Chrome trace, one track per request.
pub fn chrome_trace(spans: &[SpanRecord]) -> ChromeTrace {
    let mut events = Vec::with_capacity(spans.len() * 11);
    for span in spans {
        events.push(ChromeEvent {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: "M".to_string(),
            ts: 0.0,
            dur: 0.0,
            pid: TRACE_PID,
            tid: span.id,
            args: EventArgs {
                name: Some(format!("request {} ({})", span.id, span.model)),
                ..EventArgs::default()
            },
        });
        events.push(slice(
            &span.model,
            "request",
            span.admitted_us,
            (span.replied_us - span.admitted_us).max(0.0),
            span.id,
            EventArgs {
                model: Some(span.model.clone()),
                engine: Some(span.engine.clone()),
                worker: Some(span.worker),
                batch_size: Some(span.batch_size),
                attempts: Some(span.attempts),
                ..EventArgs::default()
            },
        ));
        let mut start = span.admitted_us;
        for (name, end) in span.segments() {
            // Clamp so a malformed span still yields a monotone track.
            let end = end.max(start);
            let mut args = EventArgs::default();
            if name == "execute" {
                if let Some(p) = &span.phases {
                    args.passes = Some(p.passes);
                    args.timesteps = Some(p.timesteps);
                    args.cycles = Some(p.cycles);
                    args.active_axon_steps = Some(p.active_axon_steps);
                    args.occupied_lane_steps = Some(p.occupied_lane_steps);
                }
            }
            events.push(slice(name, "lifecycle", start, end - start, span.id, args));
            start = end;
        }
        if let Some(p) = &span.phases {
            let window = (span.executed_us - span.planned_us).max(0.0);
            let total = p.total_phase_ns();
            if total > 0 {
                // Sequential slices scaled to the execute window: each
                // starts exactly where the previous one ends.
                let mut t = span.planned_us.max(span.admitted_us);
                for (name, ns) in p.phase_ns() {
                    let dur = window * (ns as f64 / total as f64);
                    let args = EventArgs { phase_ns: Some(ns), ..EventArgs::default() };
                    events.push(slice(name, "engine", t, dur, span.id, args));
                    t += dur;
                }
            }
        }
    }
    ChromeTrace { traceEvents: events }
}

/// What [`validate`] measured about a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in the trace.
    pub events: usize,
    /// Request tracks (parent `"request"` slices).
    pub requests: usize,
    /// Engine-phase slices across all tracks.
    pub phase_slices: usize,
}

/// Checks the invariants the exporter promises: every event carries a
/// known phase type and a non-negative duration, and within each track
/// the lifecycle slices — and separately the engine-phase slices — are
/// monotone and non-overlapping in time.
///
/// # Errors
///
/// Returns [`Error::InvalidControl`] naming the first violated
/// invariant.
pub fn validate(trace: &ChromeTrace) -> Result<TraceSummary> {
    let bad = |reason: String| Error::InvalidControl { component: "chrome trace".into(), reason };
    let mut requests = 0usize;
    let mut phase_slices = 0usize;
    // Events arrive grouped per track; track the running end per
    // (tid, cat) for the two child categories.
    let mut last_end: std::collections::BTreeMap<(u64, &str), f64> =
        std::collections::BTreeMap::new();
    for event in &trace.traceEvents {
        match event.ph.as_str() {
            "M" => continue,
            "X" => {}
            other => return Err(bad(format!("unknown phase type `{other}`"))),
        }
        if !(event.dur >= 0.0 && event.ts.is_finite() && event.dur.is_finite()) {
            return Err(bad(format!("non-finite or negative slice at ts {}", event.ts)));
        }
        let cat = match event.cat.as_str() {
            "request" => {
                requests += 1;
                continue;
            }
            "lifecycle" => "lifecycle",
            "engine" => {
                phase_slices += 1;
                "engine"
            }
            other => return Err(bad(format!("unknown category `{other}`"))),
        };
        let end = last_end.entry((event.tid, cat)).or_insert(f64::NEG_INFINITY);
        // Tolerate only float representation slack, not real overlap.
        if event.ts < *end - 1e-6 {
            return Err(bad(format!(
                "overlapping {cat} slices on track {}: `{}` starts at {} before {}",
                event.tid, event.name, event.ts, end
            )));
        }
        *end = event.ts.max(*end) + event.dur;
    }
    Ok(TraceSummary { events: trace.traceEvents.len(), requests, phase_slices })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PassProfile;

    fn span() -> SpanRecord {
        SpanRecord {
            id: 7,
            model: "digits".into(),
            worker: 1,
            engine: "batched".into(),
            batch_size: 4,
            attempts: 2,
            admitted_us: 10.0,
            formed_us: 25.0,
            planned_us: 26.0,
            executed_us: 90.0,
            drained_us: 95.0,
            replied_us: 99.0,
            phases: Some(PassProfile {
                passes: 1,
                timesteps: 8,
                cycles: 80,
                acc_ns: 4_000,
                send_ns: 2_000,
                transfer_ns: 3_000,
                drain_ns: 1_000,
                op_wall_ns: 6_000,
                active_axon_steps: 64,
                occupied_lane_steps: 4,
            }),
        }
    }

    #[test]
    fn exported_trace_roundtrips_and_validates() {
        let trace = chrome_trace(&[span()]);
        let json = serde_json::to_string(&trace).unwrap();
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        let summary = validate(&back).unwrap();
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.phase_slices, 4);
        // 1 metadata + 1 request + 5 lifecycle + 4 engine slices.
        assert_eq!(summary.events, 11);
    }

    #[test]
    fn phase_slices_fill_the_execute_window_in_measured_shares() {
        let trace = chrome_trace(&[span()]);
        let engine: Vec<&ChromeEvent> =
            trace.traceEvents.iter().filter(|e| e.cat == "engine").collect();
        assert_eq!(engine[0].name, "acc");
        assert_eq!(engine[0].ts, 26.0);
        // acc measured 4000 of 10000 ns over a 64 µs window.
        assert!((engine[0].dur - 25.6).abs() < 1e-9);
        let last = engine.last().unwrap();
        assert!((last.ts + last.dur - 90.0).abs() < 1e-6, "phases end at executed_us");
    }

    #[test]
    fn overlapping_slices_are_rejected() {
        let mut trace = chrome_trace(&[span()]);
        // Shift one engine slice backwards into its predecessor.
        let idx = trace.traceEvents.iter().position(|e| e.name == "transfer").unwrap();
        trace.traceEvents[idx].ts -= 5.0;
        assert!(validate(&trace).is_err());
        let mut negative = chrome_trace(&[span()]);
        negative.traceEvents[1].dur = -1.0;
        assert!(validate(&negative).is_err());
    }
}
