//! Property-based tests of the hardware component semantics.

use proptest::prelude::*;
use shenjing_core::{ArchSpec, Direction, LocalSum, NocSum, W5};
use shenjing_hw::{
    NeuronCore, PlaneSet, PsDst, PsRouter, PsRouterOp, PsSendSource, SpikeRouter, SpikeRouterOp,
};

proptest! {
    /// ACC computes exactly the sum of weights on spiking axons, for any
    /// weight/axon pattern that fits the accumulator.
    #[test]
    fn neuron_core_acc_exact(
        weights in proptest::collection::vec(-16i32..=15, 16),
        spikes in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let arch = ArchSpec::tiny();
        let mut core = NeuronCore::new(&arch);
        for (a, w) in weights.iter().enumerate() {
            core.write_weight(a as u16, 0, W5::new(*w).unwrap()).unwrap();
        }
        for (a, s) in spikes.iter().enumerate() {
            core.set_axon(a as u16, *s).unwrap();
        }
        core.accumulate(0b1111).unwrap();
        let expected: i32 = weights
            .iter()
            .zip(&spikes)
            .filter(|(_, s)| **s)
            .map(|(w, _)| *w)
            .sum();
        prop_assert_eq!(core.local_ps(0).value(), expected);
        prop_assert_eq!(
            core.active_axon_count(),
            spikes.iter().filter(|s| **s).count()
        );
    }

    /// A PS fold through the router equals plain addition: local + each
    /// incoming value in sequence, regardless of values and order.
    #[test]
    fn ps_router_fold_is_exact_addition(
        local in -4096i32..=4095,
        incoming in proptest::collection::vec(-1000i32..=1000, 1..6),
    ) {
        let mut router = PsRouter::new(1);
        let local_ps = vec![LocalSum::new(local).unwrap()];
        let mut expected = local;
        for (i, v) in incoming.iter().enumerate() {
            router.put_input(Direction::South, 0, NocSum::new(*v).unwrap()).unwrap();
            router
                .exec(
                    &PsRouterOp::Sum {
                        src: Direction::South,
                        consec: i > 0,
                        planes: PlaneSet::all(),
                    },
                    &local_ps,
                )
                .unwrap();
            expected += v;
        }
        prop_assert_eq!(router.sum_buf(0).unwrap().value(), expected);
        // Eject and confirm the value survives the crossbar.
        router
            .exec(
                &PsRouterOp::Send {
                    source: PsSendSource::SumBuf,
                    dst: PsDst::SpikingLogic,
                    planes: PlaneSet::all(),
                },
                &local_ps,
            )
            .unwrap();
        prop_assert_eq!(router.take_eject(0).unwrap().value(), expected);
    }

    /// Spikes traverse any bypass chain unchanged and deliver exactly
    /// where configured.
    #[test]
    fn spike_bypass_chain_preserves_bits(
        bits in proptest::collection::vec(any::<bool>(), 1..16),
    ) {
        let n = bits.len() as u16;
        let mut router = SpikeRouter::new(n);
        for (p, b) in bits.iter().enumerate() {
            router.put_input(Direction::West, p as u16, *b).unwrap();
        }
        let local = vec![LocalSum::ZERO; n as usize];
        let mut eject = vec![None; n as usize];
        router
            .exec(
                &SpikeRouterOp::Bypass {
                    src: Direction::West,
                    dst: Some(Direction::East),
                    deliver: true,
                    planes: PlaneSet::all(),
                },
                &local,
                &mut eject,
            )
            .unwrap();
        // Forwarded copies match.
        for (p, b) in bits.iter().enumerate() {
            prop_assert_eq!(router.take_output(Direction::East, p as u16), Some(*b));
        }
        // Delivered copies match.
        let mut delivered: Vec<Option<bool>> = vec![None; n as usize];
        for (p, s) in router.drain_deliveries() {
            delivered[p as usize] = Some(s);
        }
        for (p, b) in bits.iter().enumerate() {
            prop_assert_eq!(delivered[p], Some(*b));
        }
    }

    /// The IF membrane is conservative: potential after a frame equals
    /// total input minus threshold times spike count.
    #[test]
    fn if_membrane_conservation(
        sums in proptest::collection::vec(-50i32..=50, 1..50),
        threshold in 1i32..100,
    ) {
        let mut router = SpikeRouter::new(1);
        router.set_threshold(0, threshold).unwrap();
        let mut spikes = 0i64;
        for s in &sums {
            router.integrate_value(0, *s);
            spikes += i64::from(router.spike_buffer(0));
        }
        let total: i64 = sums.iter().map(|s| i64::from(*s)).sum();
        prop_assert_eq!(
            i64::from(router.potential(0)),
            total - spikes * i64::from(threshold),
            "potential must account for every spike"
        );
    }
}
