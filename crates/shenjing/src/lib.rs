//! # Shenjing — reproduction of the DATE 2020 neuromorphic accelerator
//!
//! A full, from-scratch Rust reproduction of *"Shenjing: A low power
//! reconfigurable neuromorphic accelerator with partial-sum and spike
//! networks-on-chip"* (Wang, Zhou, Wong, Peh — DATE 2020).
//!
//! Shenjing maps **trained ANNs onto spiking hardware with zero mapping
//! loss**: when a layer spans several 256×256 cores, per-neuron
//! *partial-sum NoCs* add the cores' partial weighted sums exactly,
//! in-network, before the integrate-and-fire decision — where prior
//! architectures re-thresholded per core and lost information. All
//! communication is compiled ahead of time into per-cycle configuration
//! words; the routers have no buffers, no flow control and no routing
//! logic.
//!
//! ## Workspace tour
//!
//! | crate | role |
//! |---|---|
//! | [`core`] | shared vocabulary: coordinates, 5/13/16-bit fixed point, [`ArchSpec`] |
//! | [`hw`] | the microarchitecture of Fig. 2: neuron cores, PS routers, spike routers, tiles, chips, Table I control words |
//! | [`nn`] | from-scratch ANN substrate + the Table III model zoo |
//! | [`snn`] | ANN→SNN conversion (Cao-style normalization, 5-bit quantization) and the abstract integer SNN simulator |
//! | [`mapper`] | the Fig. 3 toolchain: logical splitting (Algorithm 1 folds, Fig. 4 conv tiling), placement, cycle-by-cycle compilation |
//! | [`sim`] | the cycle-level functional simulator (single-frame and batched) + bit-exact equivalence checking |
//! | [`runtime`] | the multi-model serving tier: a model registry with per-model SLOs, admission control, deadline-aware batching scheduler, worker shards, a JSON wire format, per-model latency/throughput stats |
//! | [`telemetry`] | the observability layer: atomic counters/gauges/timing histograms, sampled request-lifecycle spans with engine phase profiles, Chrome-trace and Prometheus exporters |
//! | [`power`] | Table II energies, the Fig. 5 tile model, Table IV estimation, §IV area |
//! | [`datasets`] | deterministic synthetic MNIST/CIFAR stand-ins |
//! | [`baselines`] | block-level spike aggregation (TrueNorth-style) and Table V data |
//!
//! ## End-to-end pipeline
//!
//! ```
//! use shenjing::prelude::*;
//!
//! // 1. Train a small ANN on synthetic digits.
//! let data = SynthDigits::new(7).generate(60);
//! let data: Vec<_> = shenjing::datasets::flatten_images(&data);
//! let mut ann = Network::from_specs(
//!     &[LayerSpec::dense(784, 32), LayerSpec::relu(), LayerSpec::dense(32, 10)],
//!     1,
//! )?;
//! Sgd::new(0.02, 2, 3).train(&mut ann, &data)?;
//!
//! // 2. Convert to an abstract SNN.
//! let calib: Vec<_> = data.iter().take(10).map(|(x, _)| x.clone()).collect();
//! let mut snn = convert(&mut ann, &calib, &ConversionOptions::default())?;
//!
//! // 3. Map onto the accelerator and simulate cycle by cycle.
//! let arch = ArchSpec::paper();
//! let mapping = Mapper::new(arch.clone()).map(&snn)?;
//! let mut sim = CycleSim::new(&arch, &mapping.logical, &mapping.program)?;
//!
//! // 4. The mapped hardware reproduces the abstract SNN bit for bit.
//! let report = shenjing::sim::verify(&mut snn, &mut sim, &calib[..2], 8)?;
//! assert!(report.is_exact());
//! # Ok::<(), shenjing_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shenjing_baselines as baselines;
pub use shenjing_core as core;
pub use shenjing_datasets as datasets;
pub use shenjing_hw as hw;
pub use shenjing_mapper as mapper;
pub use shenjing_nn as nn;
pub use shenjing_power as power;
pub use shenjing_runtime as runtime;
pub use shenjing_sim as sim;
pub use shenjing_snn as snn;
pub use shenjing_telemetry as telemetry;

pub use shenjing_core::ArchSpec;
// The mapper's phase entry points, re-exported so downstream code (and
// the workspace's own benches) never depends on the internal crates.
pub use shenjing_mapper::{compile, map_logical, place};

/// The most commonly needed items, for `use shenjing::prelude::*`.
pub mod prelude {
    pub use shenjing_core::{
        ArchSpec, CoreCoord, Direction, Error, NocSum, RejectReason, Result, W5,
    };
    pub use shenjing_datasets::{SynthCifar, SynthDigits};
    pub use shenjing_hw::LaneSet;
    pub use shenjing_mapper::{map_logical, place, Mapper, Mapping, PlacementStrategy};
    pub use shenjing_nn::{LayerSpec, Network, NetworkKind, Sgd, Tensor};
    pub use shenjing_power::{AreaBudget, EnergyModel, SystemEstimate, TileModel};
    #[cfg(feature = "chaos")]
    pub use shenjing_runtime::ChaosConfig;
    pub use shenjing_runtime::{
        CompiledModel, Engine, EngineKind, EnginePolicy, InferenceReply, InferenceRequest,
        ModelRegistry, ModelStats, Runtime, RuntimeConfig, RuntimeConfigBuilder, RuntimeStats,
        ServeOptions, WorkerHealth, DEFAULT_MODEL_ID,
    };
    pub use shenjing_sim::{BatchSim, CycleSim};
    pub use shenjing_snn::{convert, ConversionOptions, SnnNetwork};
    pub use shenjing_telemetry::{Telemetry, TelemetryConfig};
}
