//! Golden-trace verification: cycle-by-cycle component state digests.
//!
//! §V of the paper: "We verified this functional simulator against our
//! RTL simulator, automatically checking the state of each component
//! cycle by cycle given the same input instructions and data." This
//! module reproduces that methodology for *our* pair of models: a
//! [`StateDigest`] captures every architecturally visible register of a
//! chip (membrane potentials, PS accumulation registers, spike buffers,
//! axon bits, in-flight NoC values) after each cycle, and two runs —
//! e.g. a reference implementation and a refactored one, or the same
//! program on two chip instances — can be compared digest by digest to
//! localize the first diverging cycle and component.

use serde::{Deserialize, Serialize};
use shenjing_core::{CoreCoord, Direction, Result};
use shenjing_hw::{AtomicOp, BatchChip, Chip};

/// A compact, deterministic digest of one tile's architectural state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileDigest {
    /// Tile coordinate.
    pub coord: CoreCoord,
    /// FNV-1a hash of the axon bits.
    pub axons: u64,
    /// FNV-1a hash of the local partial sums.
    pub local_ps: u64,
    /// FNV-1a hash of PS router state (inputs, sum_buf).
    pub ps_router: u64,
    /// FNV-1a hash of spike router state (potentials, buffers, inputs).
    pub spike_router: u64,
}

/// Whole-chip state at the end of one cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDigest {
    /// The cycle this digest was captured after.
    pub cycle: u64,
    /// Per-tile digests, row-major.
    pub tiles: Vec<TileDigest>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn digest_tile(coord: CoreCoord, tile: &shenjing_hw::Tile) -> TileDigest {
    let planes = tile.spike().planes();
    let inputs = tile.core().inputs();

    let mut axons = FNV_OFFSET;
    for a in 0..inputs {
        fnv(&mut axons, &[u8::from(tile.core().axon(a).expect("in range"))]);
    }

    let mut local_ps = FNV_OFFSET;
    for s in tile.core().local_ps_all() {
        fnv(&mut local_ps, &s.value().to_le_bytes());
    }

    let mut ps_router = FNV_OFFSET;
    for p in 0..planes {
        let v = tile.ps().sum_buf(p).map(|s| s.value()).unwrap_or(i32::MIN);
        fnv(&mut ps_router, &v.to_le_bytes());
        for d in Direction::ALL {
            let v = tile.ps().peek_input(d, p).map(|s| s.value()).unwrap_or(i32::MIN);
            fnv(&mut ps_router, &v.to_le_bytes());
        }
    }

    let mut spike_router = FNV_OFFSET;
    for p in 0..planes {
        fnv(&mut spike_router, &tile.spike().potential(p).to_le_bytes());
        fnv(&mut spike_router, &[u8::from(tile.spike().spike_buffer(p))]);
    }

    TileDigest { coord, axons, local_ps, ps_router, spike_router }
}

/// Captures the digest of every tile of a chip.
pub fn digest_chip(cycle: u64, chip: &Chip) -> StateDigest {
    StateDigest {
        cycle,
        tiles: chip.iter().map(|(coord, tile)| digest_tile(coord, tile)).collect(),
    }
}

fn digest_batch_tile(
    coord: CoreCoord,
    tile: &shenjing_hw::BatchTile,
    lanes: &shenjing_hw::LaneSet,
) -> TileDigest {
    let core = tile.core();
    let planes = core.neurons();
    let batch = lanes.batch();

    let mut axons = FNV_OFFSET;
    for a in 0..core.inputs() {
        for &lane in lanes.as_slice() {
            fnv(&mut axons, &[u8::from(core.axon(a, lane).expect("in range"))]);
        }
    }

    let mut local_ps = FNV_OFFSET;
    for chunk in core.local_ps_all().chunks_exact(batch) {
        for &lane in lanes.as_slice() {
            fnv(&mut local_ps, &chunk[lane].to_le_bytes());
        }
    }

    let mut ps_router = FNV_OFFSET;
    for p in 0..planes {
        for &lane in lanes.as_slice() {
            let v = tile.ps().sum_buf(p, lane).unwrap_or(i32::MIN);
            fnv(&mut ps_router, &v.to_le_bytes());
            for d in Direction::ALL {
                let v = tile.ps().peek_input(d, p, lane).unwrap_or(i32::MIN);
                fnv(&mut ps_router, &v.to_le_bytes());
            }
        }
    }

    let mut spike_router = FNV_OFFSET;
    for p in 0..planes {
        for &lane in lanes.as_slice() {
            fnv(&mut spike_router, &tile.spike().potential(p, lane).to_le_bytes());
            fnv(&mut spike_router, &[u8::from(tile.spike().spike_buffer(p, lane))]);
        }
    }

    TileDigest { coord, axons, local_ps, ps_router, spike_router }
}

/// Captures the digest of every tile of a batched chip, covering every
/// *occupied* lane: axon bits, local partial sums, PS router state
/// (sum_buf and in-flight inputs) and spike router state (potentials,
/// spike buffers) — the batched counterpart of [`digest_chip`], consumed
/// by [`verify_batched`](crate::equivalence::verify_batched).
///
/// Unoccupied lanes are excluded by design: the lane-occupancy engine
/// leaves stale payload there (nothing reads it), so only the occupied
/// lanes carry architecturally meaningful state.
pub fn digest_batch_chip(cycle: u64, chip: &BatchChip) -> StateDigest {
    let lanes = chip.lanes();
    StateDigest {
        cycle,
        tiles: chip.iter().map(|(coord, tile)| digest_batch_tile(coord, tile, lanes)).collect(),
    }
}

/// The first divergence between two traces, if any.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Cycle of the first mismatch.
    pub cycle: u64,
    /// Tile where the state differs.
    pub coord: CoreCoord,
    /// Which component diverged first.
    pub component: String,
}

/// Compares two cycle-by-cycle traces, returning the first divergence.
pub fn compare_traces(a: &[StateDigest], b: &[StateDigest]) -> Option<Divergence> {
    for (da, db) in a.iter().zip(b) {
        debug_assert_eq!(da.cycle, db.cycle);
        for (ta, tb) in da.tiles.iter().zip(&db.tiles) {
            let component = if ta.axons != tb.axons {
                "axons"
            } else if ta.local_ps != tb.local_ps {
                "neuron core"
            } else if ta.ps_router != tb.ps_router {
                "ps router"
            } else if ta.spike_router != tb.spike_router {
                "spike router"
            } else {
                continue;
            };
            return Some(Divergence {
                cycle: da.cycle,
                coord: ta.coord,
                component: component.to_string(),
            });
        }
    }
    None
}

/// Runs one timestep block of `ops` on a chip, capturing a digest after
/// every cycle.
///
/// # Errors
///
/// Propagates execution errors from the chip.
pub fn trace_block(
    chip: &mut Chip,
    schedule: &[(u64, Vec<(CoreCoord, AtomicOp)>)],
    block_cycles: u64,
) -> Result<Vec<StateDigest>> {
    let mut trace = Vec::with_capacity(block_cycles as usize);
    let mut idx = 0usize;
    for cycle in 0..block_cycles {
        let ops: &[(CoreCoord, AtomicOp)] = if idx < schedule.len() && schedule[idx].0 == cycle {
            let ops = &schedule[idx].1;
            idx += 1;
            ops
        } else {
            &[]
        };
        chip.exec_cycle(cycle, ops)?;
        trace.push(digest_chip(cycle, chip));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shenjing_core::{ArchSpec, W5};
    use shenjing_hw::{NeuronCoreOp, PlaneSet, SpikeRouterOp};

    fn tiny_chip() -> Chip {
        Chip::new(&ArchSpec::tiny(), 2, 2).unwrap()
    }

    fn acc_op(coord: CoreCoord) -> (CoreCoord, AtomicOp) {
        (coord, AtomicOp::Core(NeuronCoreOp::Acc { banks: 0b1111 }))
    }

    #[test]
    fn identical_runs_produce_identical_traces() {
        let build = || {
            let mut chip = tiny_chip();
            let c = CoreCoord::new(0, 0);
            chip.tile_mut(c).unwrap().core_mut().write_weight(0, 0, W5::new(5).unwrap()).unwrap();
            chip.tile_mut(c).unwrap().core_mut().set_axon(0, true).unwrap();
            chip
        };
        let schedule = vec![
            (0u64, vec![acc_op(CoreCoord::new(0, 0))]),
            (
                1u64,
                vec![(
                    CoreCoord::new(0, 0),
                    AtomicOp::Spike(SpikeRouterOp::Spike {
                        from_ps_router: false,
                        planes: PlaneSet::all(),
                    }),
                )],
            ),
        ];
        let mut a = build();
        let mut b = build();
        let ta = trace_block(&mut a, &schedule, 4).unwrap();
        let tb = trace_block(&mut b, &schedule, 4).unwrap();
        assert_eq!(ta.len(), 4);
        assert_eq!(compare_traces(&ta, &tb), None);
    }

    #[test]
    fn divergence_localized_to_cycle_and_component() {
        let schedule = vec![(0u64, vec![acc_op(CoreCoord::new(1, 1))])];
        let mut a = tiny_chip();
        let mut b = tiny_chip();
        // Perturb b: one different weight on tile (1,1) with a live axon.
        for chip in [&mut a, &mut b] {
            chip.tile_mut(CoreCoord::new(1, 1)).unwrap().core_mut().set_axon(2, true).unwrap();
        }
        b.tile_mut(CoreCoord::new(1, 1))
            .unwrap()
            .core_mut()
            .write_weight(2, 3, W5::new(7).unwrap())
            .unwrap();
        let ta = trace_block(&mut a, &schedule, 2).unwrap();
        let tb = trace_block(&mut b, &schedule, 2).unwrap();
        let div = compare_traces(&ta, &tb).expect("must diverge");
        assert_eq!(div.cycle, 0, "ACC happens at cycle 0");
        assert_eq!(div.coord, CoreCoord::new(1, 1));
        assert_eq!(div.component, "neuron core");
    }

    #[test]
    fn axon_differences_detected_before_anything_else() {
        let mut a = tiny_chip();
        let mut b = tiny_chip();
        b.tile_mut(CoreCoord::new(0, 1)).unwrap().core_mut().set_axon(5, true).unwrap();
        let da = vec![digest_chip(0, &a)];
        let db = vec![digest_chip(0, &b)];
        let div = compare_traces(&da, &db).expect("must diverge");
        assert_eq!(div.component, "axons");
        assert_eq!(div.coord, CoreCoord::new(0, 1));
        // and the clean chips agree with themselves
        assert_eq!(compare_traces(&da, &da), None);
        let _ = (&mut a, &mut b);
    }

    #[test]
    fn digests_are_order_stable() {
        let chip = tiny_chip();
        let d1 = digest_chip(3, &chip);
        let d2 = digest_chip(3, &chip);
        assert_eq!(d1, d2);
        assert_eq!(d1.tiles.len(), 4);
    }
}
