//! Per-direction occupancy bitmasks over the router output registers.
//!
//! The transfer phase of the chip fabric used to probe every
//! `(direction, plane)` output register of every tile each cycle —
//! `4 × core_neurons` loads per router even when nothing was in flight.
//! [`PortOccupancy`] is the shared bookkeeping all four routers
//! (sequential and batched) now use instead: one bit per output
//! register, grouped by direction so the fabric can jump straight to the
//! occupied planes with a word scan. Payloads stay in the routers'
//! register vectors; the mask only indexes them.
//!
//! Layout: word `port.encode() * words + w` masks planes
//! `64*w .. 64*w + 64` of that port, with `words = ceil(planes / 64)`.

use shenjing_core::Direction;

/// Occupancy bits of the `4 × planes` output registers of one router.
#[derive(Debug, Clone)]
pub(crate) struct PortOccupancy {
    /// Mask words per direction: `ceil(planes / 64)`.
    words: usize,
    bits: Vec<u64>,
}

impl PortOccupancy {
    /// An all-free mask over `planes` planes per direction.
    pub(crate) fn new(planes: u16) -> PortOccupancy {
        let words = (planes as usize).div_ceil(64);
        PortOccupancy { words, bits: vec![0; words * 4] }
    }

    #[inline]
    fn base(&self, port: Direction) -> usize {
        port.encode() as usize * self.words
    }

    /// Marks `(port, plane)` occupied.
    #[inline]
    pub(crate) fn set(&mut self, port: Direction, plane: u16) {
        let base = self.base(port);
        self.bits[base + plane as usize / 64] |= 1u64 << (plane as usize % 64);
    }

    /// Marks `(port, plane)` free.
    #[inline]
    pub(crate) fn clear(&mut self, port: Direction, plane: u16) {
        let base = self.base(port);
        self.bits[base + plane as usize / 64] &= !(1u64 << (plane as usize % 64));
    }

    /// Whether `(port, plane)` is occupied.
    #[inline]
    pub(crate) fn contains(&self, port: Direction, plane: u16) -> bool {
        let base = self.base(port);
        self.bits[base + plane as usize / 64] & (1u64 << (plane as usize % 64)) != 0
    }

    /// The lowest occupied plane at `port`, if any (a word scan).
    #[inline]
    pub(crate) fn first(&self, port: Direction) -> Option<u16> {
        let base = self.base(port);
        self.bits[base..base + self.words].iter().enumerate().find_map(|(w, &word)| {
            (word != 0).then(|| (w * 64 + word.trailing_zeros() as usize) as u16)
        })
    }

    /// Whether any register of any port is occupied.
    #[inline]
    pub(crate) fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Marks every plane of `port` occupied (bulk whole-port writes).
    #[inline]
    pub(crate) fn fill(&mut self, port: Direction, planes: u16) {
        let base = self.base(port);
        for (w, word) in self.bits[base..base + self.words].iter_mut().enumerate() {
            let remaining = planes as usize - (w * 64).min(planes as usize);
            *word = if remaining >= 64 { u64::MAX } else { (1u64 << remaining) - 1 };
        }
    }

    /// Frees every register of every port.
    #[inline]
    pub(crate) fn reset(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_first_clear_roundtrip() {
        let mut occ = PortOccupancy::new(256);
        assert_eq!(occ.words, 4);
        assert_eq!(occ.first(Direction::East), None);
        occ.set(Direction::East, 200);
        occ.set(Direction::East, 7);
        occ.set(Direction::West, 63);
        assert_eq!(occ.first(Direction::East), Some(7));
        assert_eq!(occ.first(Direction::West), Some(63));
        assert_eq!(occ.first(Direction::North), None);
        assert!(occ.contains(Direction::East, 200));
        assert!(!occ.contains(Direction::East, 199));
        occ.clear(Direction::East, 7);
        assert_eq!(occ.first(Direction::East), Some(200));
        occ.clear(Direction::East, 200);
        occ.clear(Direction::West, 63);
        assert!(!occ.any());
    }

    #[test]
    fn sub_word_plane_counts() {
        // A 16-plane tile still gets one full word per direction.
        let mut occ = PortOccupancy::new(16);
        assert_eq!(occ.words, 1);
        occ.set(Direction::South, 15);
        assert_eq!(occ.first(Direction::South), Some(15));
        assert!(occ.any());
    }

    #[test]
    fn fill_and_reset() {
        let mut occ = PortOccupancy::new(80);
        occ.fill(Direction::North, 80);
        assert_eq!(occ.first(Direction::North), Some(0));
        for p in 0..80u16 {
            occ.clear(Direction::North, p);
        }
        assert!(!occ.any(), "fill covers exactly the tile's planes");
        occ.set(Direction::East, 3);
        occ.reset();
        assert!(!occ.any());
    }
}
