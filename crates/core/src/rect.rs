//! Axis-aligned rectangles of grid cells.
//!
//! The physical mapper places each layer's logical core grid into a
//! rectangular region of tiles ("we first search for a rectangular space
//! that can accommodate this layer", §III), so rectangle geometry is shared
//! vocabulary.

use crate::coord::CoreCoord;
use serde::{Deserialize, Serialize};

/// A half-open rectangle of grid cells: rows `[row..row+rows)`, columns
/// `[col..col+cols)`.
///
/// ```
/// use shenjing_core::{CoreCoord, Rect};
/// let r = Rect::new(1, 2, 3, 4); // origin (1,2), 3 rows, 4 cols
/// assert_eq!(r.area(), 12);
/// assert!(r.contains(CoreCoord::new(3, 5)));
/// assert!(!r.contains(CoreCoord::new(4, 2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Top row of the rectangle.
    pub row: u16,
    /// Left column of the rectangle.
    pub col: u16,
    /// Number of rows (height).
    pub rows: u16,
    /// Number of columns (width).
    pub cols: u16,
}

impl Rect {
    /// Creates a rectangle from its origin and extent.
    pub fn new(row: u16, col: u16, rows: u16, cols: u16) -> Rect {
        Rect { row, col, rows, cols }
    }

    /// Number of cells covered.
    pub fn area(self) -> u32 {
        u32::from(self.rows) * u32::from(self.cols)
    }

    /// Whether `c` lies inside the rectangle.
    pub fn contains(self, c: CoreCoord) -> bool {
        c.row >= self.row
            && c.row < self.row + self.rows
            && c.col >= self.col
            && c.col < self.col + self.cols
    }

    /// Whether the two rectangles share any cell. Empty rectangles
    /// intersect nothing.
    pub fn intersects(self, other: Rect) -> bool {
        self.area() > 0
            && other.area() > 0
            && self.row < other.row + other.rows
            && other.row < self.row + self.rows
            && self.col < other.col + other.cols
            && other.col < self.col + self.cols
    }

    /// Whether the rectangle fits within a `grid_rows × grid_cols` grid.
    pub fn fits_in(self, grid_rows: u16, grid_cols: u16) -> bool {
        self.row + self.rows <= grid_rows && self.col + self.cols <= grid_cols
    }

    /// Iterates the contained coordinates in row-major order.
    pub fn iter(self) -> impl Iterator<Item = CoreCoord> {
        let Rect { row, col, rows, cols } = self;
        (row..row + rows).flat_map(move |r| (col..col + cols).map(move |c| CoreCoord::new(r, c)))
    }

    /// The coordinate at relative position `(dr, dc)` inside the rectangle,
    /// or `None` if outside the extent.
    pub fn at(self, dr: u16, dc: u16) -> Option<CoreCoord> {
        if dr < self.rows && dc < self.cols {
            Some(CoreCoord::new(self.row + dr, self.col + dc))
        } else {
            None
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}x{} @ ({},{})]", self.rows, self.cols, self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_contains() {
        let r = Rect::new(0, 0, 2, 3);
        assert_eq!(r.area(), 6);
        assert!(r.contains(CoreCoord::new(1, 2)));
        assert!(!r.contains(CoreCoord::new(2, 0)));
        assert!(!r.contains(CoreCoord::new(0, 3)));
    }

    #[test]
    fn intersection() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(1, 1, 2, 2);
        let c = Rect::new(2, 2, 2, 2);
        assert!(a.intersects(b));
        assert!(b.intersects(a));
        assert!(!a.intersects(c));
        assert!(b.intersects(c));
        assert!(a.intersects(a));
    }

    #[test]
    fn zero_sized_rect_intersects_nothing() {
        let z = Rect::new(1, 1, 0, 0);
        let a = Rect::new(0, 0, 4, 4);
        assert!(!z.intersects(a));
        assert!(!a.intersects(z));
        assert_eq!(z.area(), 0);
    }

    #[test]
    fn fits_in_grid() {
        assert!(Rect::new(26, 26, 2, 2).fits_in(28, 28));
        assert!(!Rect::new(27, 26, 2, 2).fits_in(28, 28));
        assert!(Rect::new(0, 0, 28, 28).fits_in(28, 28));
    }

    #[test]
    fn iter_row_major() {
        let cells: Vec<_> = Rect::new(1, 1, 2, 2).iter().collect();
        assert_eq!(
            cells,
            vec![
                CoreCoord::new(1, 1),
                CoreCoord::new(1, 2),
                CoreCoord::new(2, 1),
                CoreCoord::new(2, 2)
            ]
        );
    }

    #[test]
    fn at_relative() {
        let r = Rect::new(3, 4, 2, 2);
        assert_eq!(r.at(0, 0), Some(CoreCoord::new(3, 4)));
        assert_eq!(r.at(1, 1), Some(CoreCoord::new(4, 5)));
        assert_eq!(r.at(2, 0), None);
        assert_eq!(r.at(0, 2), None);
    }

    #[test]
    fn iter_count_matches_area() {
        let r = Rect::new(0, 5, 3, 7);
        assert_eq!(r.iter().count() as u32, r.area());
    }
}
