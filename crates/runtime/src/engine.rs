//! The unified execution-engine abstraction the worker shards drive.
//!
//! Both simulators serve gathered batches through one
//! `plan → execute → drain` lifecycle over a
//! [`CompiledModel`](crate::CompiledModel) replica, so the scheduler
//! carries **no per-engine plumbing**: a worker holds `Box<dyn Engine>`
//! slots, plans the gathered frame count onto whichever one the
//! [`EnginePolicy`](crate::EnginePolicy) picks, executes, and drains.
//! The engines are bit-identical on every frame (the batched equivalence
//! proptests in `shenjing-sim` pin this), so dispatch is purely a
//! performance decision — and with the batched engine occupancy-bound
//! (its `plan` occupies exactly the gathered lanes; see
//! [`LaneSet`](shenjing_sim::LaneSet)), both engines' costs scale with
//! the frame count, which is what lets the scheduler compare them per
//! unit.

use shenjing_core::{Error, Result};
use shenjing_nn::Tensor;
use shenjing_sim::{BatchSim, CycleSim};
use shenjing_snn::SnnOutput;

/// Which engine implementation served a batch — the label carried by
/// [`InferenceReply`](crate::InferenceReply) and the per-engine counters
/// in [`RuntimeStats`](crate::RuntimeStats). Serializes as a bare string
/// in the wire format (see [`wire`](crate::wire)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EngineKind {
    /// The single-frame sparse-sequential [`CycleSim`], run once per
    /// frame.
    Sequential,
    /// The lane-occupancy SoA [`BatchSim`], advancing all gathered frames
    /// in one pass over the schedule.
    Batched,
}

/// One worker-owned chip replica serving gathered batches.
///
/// Lifecycle per batch: [`plan`](Engine::plan) the gathered frame count,
/// [`execute`](Engine::execute) the frames, [`drain`](Engine::drain) so
/// the replica idles clean for the next batch. Implemented by both
/// [`CycleSim`] (plan and drain are no-ops; execution is one
/// `run_frame` per frame) and [`BatchSim`] (plan occupies lanes `0..n`,
/// drain releases them in `O(their active state)`).
pub trait Engine: Send {
    /// Which engine this is, for replies and stats.
    fn kind(&self) -> EngineKind;

    /// Prepares the replica for a gathered batch of `frames` requests —
    /// the batched engine reconciles its lane occupancy here, so the
    /// following [`execute`](Engine::execute) pays for occupancy, not
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the replica cannot hold
    /// `frames` frames; a plan error fails the whole batch.
    fn plan(&mut self, frames: usize) -> Result<()>;

    /// Advances every planned frame, returning one verdict per frame in
    /// input order.
    fn execute(&mut self, inputs: &[Tensor], timesteps: u32) -> Vec<Result<SnnOutput>>;

    /// Releases per-batch resources so the replica idles clean (finished
    /// frames leave their lanes on the batched engine).
    fn drain(&mut self);

    /// Turns per-pass phase profiling on for subsequent
    /// [`execute`](Engine::execute) calls (and off again). The scheduler
    /// enables this only for batches carrying a telemetry-sampled
    /// request, so unprofiled batches run the untouched fast path. The
    /// default is a no-op for engines without profiling support (or with
    /// the `telemetry` feature off).
    fn set_profiling(&mut self, _on: bool) {}

    /// Takes the phase profile accumulated since profiling was enabled,
    /// stopping profiling. `None` when profiling was never on (or the
    /// `telemetry` feature is off).
    fn take_profile(&mut self) -> Option<shenjing_telemetry::PassProfile> {
        None
    }

    /// Selects whether this replica executes the compacted schedule
    /// (when its program carries one) or the raw per-cycle walk. The
    /// serving tier calls this with `false` on every replica when
    /// [`RuntimeConfig::optimize_schedule`](crate::RuntimeConfig::optimize_schedule)
    /// is off — the operational escape hatch that keeps the reference
    /// walk reachable without recompiling. The default is a no-op for
    /// engines without a compacted mode.
    fn set_schedule_compaction(&mut self, _on: bool) {}

    /// Sets the worker-thread budget for intra-pass parallel execution
    /// of conflict-free tile groups. `1` forces the serial reference
    /// walk. The serving tier calls this on every replica when
    /// [`RuntimeConfig::intra_pass_threads`](crate::RuntimeConfig::intra_pass_threads)
    /// is set. The default is a no-op for engines without a worker pool.
    fn set_intra_pass_threads(&mut self, _threads: usize) {}
}

impl Engine for CycleSim {
    fn kind(&self) -> EngineKind {
        EngineKind::Sequential
    }

    fn plan(&mut self, _frames: usize) -> Result<()> {
        Ok(())
    }

    fn execute(&mut self, inputs: &[Tensor], timesteps: u32) -> Vec<Result<SnnOutput>> {
        // Per-frame execution, per-frame verdicts: one erroring frame
        // does not poison its co-riders.
        inputs.iter().map(|f| self.run_frame(f, timesteps)).collect()
    }

    fn drain(&mut self) {}

    #[cfg(feature = "telemetry")]
    fn set_profiling(&mut self, on: bool) {
        CycleSim::set_profiling(self, on);
    }

    #[cfg(feature = "telemetry")]
    fn take_profile(&mut self) -> Option<shenjing_telemetry::PassProfile> {
        CycleSim::take_profile(self)
    }

    fn set_schedule_compaction(&mut self, on: bool) {
        CycleSim::set_compaction(self, on);
    }

    fn set_intra_pass_threads(&mut self, threads: usize) {
        CycleSim::set_intra_pass_threads(self, threads);
    }
}

impl Engine for BatchSim {
    fn kind(&self) -> EngineKind {
        EngineKind::Batched
    }

    fn plan(&mut self, frames: usize) -> Result<()> {
        if frames > self.batch() {
            return Err(Error::config(format!(
                "{frames} frames exceed the {}-lane replica",
                self.batch()
            )));
        }
        let prefix: Vec<usize> = (0..frames).collect();
        self.set_occupied_lanes(&prefix)
    }

    fn execute(&mut self, inputs: &[Tensor], timesteps: u32) -> Vec<Result<SnnOutput>> {
        match self.run_occupied(inputs, timesteps) {
            Ok(outputs) => outputs.into_iter().map(Ok).collect(),
            // A schedule violation poisons the whole batch; every rider
            // learns why.
            Err(e) => (0..inputs.len()).map(|_| Err(e.clone())).collect(),
        }
    }

    fn drain(&mut self) {
        let occupied: Vec<usize> = self.lanes().iter().collect();
        for lane in occupied {
            let _ = self.release_lane(lane);
        }
    }

    #[cfg(feature = "telemetry")]
    fn set_profiling(&mut self, on: bool) {
        BatchSim::set_profiling(self, on);
    }

    #[cfg(feature = "telemetry")]
    fn take_profile(&mut self) -> Option<shenjing_telemetry::PassProfile> {
        BatchSim::take_profile(self)
    }

    fn set_schedule_compaction(&mut self, on: bool) {
        BatchSim::set_compaction(self, on);
    }

    fn set_intra_pass_threads(&mut self, threads: usize) {
        BatchSim::set_intra_pass_threads(self, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompiledModel;
    use shenjing_core::{ArchSpec, W5};
    use shenjing_snn::{SnnLayer, SnnNetwork, SpikingDense};

    fn model() -> CompiledModel {
        let weights: Vec<W5> = (0..8 * 3).map(|i| W5::saturating(i % 9 - 4)).collect();
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 8, 3, 5, 1.0).unwrap(),
        )])
        .unwrap();
        CompiledModel::compile(&ArchSpec::tiny(), &snn).unwrap()
    }

    #[test]
    fn both_engines_agree_through_the_trait() {
        let model = model();
        let mut engines: Vec<Box<dyn Engine>> = vec![
            Box::new(model.instantiate().unwrap()),
            Box::new(model.instantiate_batched(4).unwrap()),
        ];
        let inputs: Vec<Tensor> = (0..3)
            .map(|k| {
                Tensor::from_vec(vec![8], (0..8).map(|i| ((i + k) % 4) as f64 / 3.0).collect())
                    .unwrap()
            })
            .collect();
        let mut outputs = Vec::new();
        for engine in &mut engines {
            engine.plan(inputs.len()).unwrap();
            let results = engine.execute(&inputs, 7);
            engine.drain();
            outputs.push(results.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>());
        }
        assert_eq!(engines[0].kind(), EngineKind::Sequential);
        assert_eq!(engines[1].kind(), EngineKind::Batched);
        assert_eq!(outputs[0], outputs[1], "the trait serves bit-identical frames");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn profiling_flows_through_the_trait_on_both_engines() {
        let model = model();
        let inputs: Vec<Tensor> =
            vec![Tensor::from_vec(vec![8], (0..8).map(|i| i as f64 / 8.0).collect()).unwrap(); 2];
        let mut engines: Vec<Box<dyn Engine>> = vec![
            Box::new(model.instantiate().unwrap()),
            Box::new(model.instantiate_batched(4).unwrap()),
        ];
        for engine in &mut engines {
            assert!(engine.take_profile().is_none(), "profiling starts off");
            engine.set_profiling(true);
            engine.plan(inputs.len()).unwrap();
            for r in engine.execute(&inputs, 5) {
                r.unwrap();
            }
            engine.drain();
            let profile = engine.take_profile().expect("profiled batch yields a profile");
            match engine.kind() {
                // One pass per frame, each 5 timesteps long.
                EngineKind::Sequential => {
                    assert_eq!((profile.passes, profile.timesteps), (2, 10));
                }
                // One SoA pass advances both frames together.
                EngineKind::Batched => {
                    assert_eq!((profile.passes, profile.timesteps), (1, 5));
                    assert_eq!(profile.occupied_lane_steps, 2, "two lanes were occupied");
                }
            }
            assert!(profile.total_phase_ns() > 0);
            assert!(engine.take_profile().is_none(), "take_profile stops profiling");
        }
    }

    #[test]
    fn batched_plan_occupies_and_drain_releases() {
        let model = model();
        let mut sim = model.instantiate_batched(8).unwrap();
        Engine::plan(&mut sim, 3).unwrap();
        assert_eq!(sim.lanes().as_slice(), &[0, 1, 2]);
        Engine::drain(&mut sim);
        assert!(sim.lanes().is_empty(), "drained replicas idle clean");
        assert!(Engine::plan(&mut sim, 9).is_err(), "over-capacity plans fail the batch");
    }
}
