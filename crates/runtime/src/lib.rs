//! Batched, multi-chip inference serving over compiled Shenjing models.
//!
//! The paper validates its cycle-level simulator one frame at a time;
//! this crate turns that faithful-but-slow reproduction into a
//! throughput engine, the way TrueNorth-style deployments amortize the
//! static per-cycle configuration across many inputs. Three layers:
//!
//! 1. **Compiled artifact** — [`CompiledModel`] runs the mapping
//!    toolchain once and decodes the program (schedule flattened, weight
//!    blocks materialized) into an `Arc`-shared image that instantiates
//!    per-worker simulator replicas cheaply.
//! 2. **Batched execution** — each replica serves through the [`Engine`]
//!    trait's uniform `plan → execute → drain` lifecycle, implemented by
//!    both the single-frame [`CycleSim`](shenjing_sim::CycleSim) and the
//!    SoA [`BatchSim`](shenjing_sim::BatchSim). The compiled schedule is
//!    static, so register occupancy is identical across frames and one
//!    pass over the per-cycle control words advances a whole batch —
//!    bit-identically to sequential single-frame runs, and
//!    *occupancy-bound*: planning an `n`-of-`max_batch` batch occupies
//!    exactly `n` lanes, so under-full passes pay for the frames they
//!    carry.
//! 3. **Scheduler/serving** — [`Runtime`] owns a shared request queue
//!    and `workers` shards, each holding [`Engine`] replicas. A shard
//!    gathers up to `max_batch` requests, holding the batch open at most
//!    `max_wait` for stragglers, picks an engine per batch via the
//!    [`EnginePolicy`] (auto dispatch is a marginal-cost model over
//!    EMA'd per-occupied-lane batched cost vs per-frame sequential cost;
//!    see [`RuntimeConfig::engine`]), then answers every rider;
//!    per-request latency (with p50/p95/p99 percentiles), per-engine
//!    frame counters, a batch-occupancy histogram and aggregate
//!    throughput land in [`RuntimeStats`].
//!
//! # Example
//!
//! ```
//! use shenjing_core::{ArchSpec, W5};
//! use shenjing_nn::Tensor;
//! use shenjing_runtime::{CompiledModel, Runtime, RuntimeConfig};
//! use shenjing_snn::{SnnLayer, SnnNetwork, SpikingDense};
//!
//! // A trained-and-converted SNN (hand-built here) compiled once…
//! let snn = SnnNetwork::new(vec![SnnLayer::Dense(
//!     SpikingDense::new(vec![W5::new(3)?; 8], 4, 2, 5, 1.0)?,
//! )])?;
//! let model = CompiledModel::compile(&ArchSpec::tiny(), &snn)?;
//!
//! // …serves traffic from N worker shards, batching as it goes.
//! let runtime = Runtime::start(model, RuntimeConfig::default())?;
//! let reply = runtime.infer(Tensor::from_vec(vec![4], vec![1.0, 0.0, 0.5, 0.5])?)?;
//! println!("class {} in {:?}", reply.predicted, reply.latency);
//! let stats = runtime.shutdown()?;
//! assert_eq!(stats.completed, 1);
//! # Ok::<(), shenjing_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod model;
pub mod server;
pub mod stats;

pub use engine::{Engine, EngineKind};
pub use model::CompiledModel;
pub use server::{EnginePolicy, InferenceReply, PendingReply, Runtime, RuntimeConfig};
pub use stats::RuntimeStats;
