//! Structural claims of the paper, checked against the implementation.

use shenjing::mapper::map_logical;
use shenjing::prelude::*;
use shenjing::snn::snn_from_specs;

#[test]
fn fig1_mnist_mlp_maps_to_ten_cores() {
    let snn = snn_from_specs(&NetworkKind::MnistMlp.specs(), (28, 28, 1), 1).unwrap();
    let mapping = map_logical(&ArchSpec::paper(), &snn).unwrap();
    assert_eq!(mapping.total_cores(), 10, "Fig. 1 / Table IV: 10 cores");
    // FC1: 4x2 grid; FC2: 2x1.
    assert_eq!(mapping.layers[0].fold_groups.len(), 2);
    assert_eq!(mapping.layers[0].fold_groups[0].members.len(), 4);
    assert_eq!(mapping.layers[1].fold_groups.len(), 1);
    assert_eq!(mapping.layers[1].fold_groups[0].members.len(), 2);
}

#[test]
fn table4_core_counts_within_15_percent() {
    // Our tiling reproduces the paper's core-count structure
    // (c_in·c_out·n_h·n_w for convs, ⌈m/256⌉·⌈n/256⌉ for FCs). The
    // absolute counts land within 15% of Table IV; exact equality is not
    // expected because the paper does not specify its pooling/input-layer
    // core accounting.
    let arch = ArchSpec::paper();
    for kind in [NetworkKind::MnistCnn, NetworkKind::CifarCnn, NetworkKind::CifarResNet] {
        let snn = snn_from_specs(&kind.specs(), kind.input_shape(), 1).unwrap();
        let mapping = map_logical(&arch, &snn).unwrap();
        let ours = mapping.total_cores() as f64;
        let paper = f64::from(kind.paper_core_count());
        let rel = (ours - paper).abs() / paper;
        assert!(rel < 0.15, "{kind}: {ours} cores vs paper {paper} ({:.1}% off)", rel * 100.0);
    }
}

#[test]
fn cifar_cnn_needs_four_chips() {
    // Table IV: CIFAR-10 CNN spans 4 chips of 784 cores.
    let snn = snn_from_specs(&NetworkKind::CifarCnn.specs(), (24, 24, 3), 1).unwrap();
    let mapping = map_logical(&ArchSpec::paper(), &snn).unwrap();
    assert_eq!(mapping.chips_needed(), 4);
}

#[test]
fn per_neuron_noc_constraint_holds_everywhere() {
    // Every spike travels on the plane equal to its destination axon —
    // the defining constraint of per-neuron NoCs — for every benchmark
    // topology.
    let arch = ArchSpec::paper();
    for kind in NetworkKind::ALL {
        let snn = snn_from_specs(&kind.specs(), kind.input_shape(), 1).unwrap();
        let mapping = map_logical(&arch, &snn).unwrap();
        for link in mapping.spike_links() {
            assert_eq!(link.src_plane, link.dst_axon, "{kind}: plane/axon misalignment");
        }
        mapping.validate().unwrap();
    }
}

#[test]
fn resnet_shortcut_cores_present_at_scale() {
    // §III: ResNet shortcuts are supported by diag(λ) normalization cores
    // folding over the PS NoC — present in the full CIFAR-10 ResNet map.
    use shenjing::mapper::ir::CoreRole;
    let snn = snn_from_specs(&NetworkKind::CifarResNet.specs(), (24, 24, 3), 1).unwrap();
    let mapping = map_logical(&ArchSpec::paper(), &snn).unwrap();
    let shortcut_cores = mapping.cores.iter().filter(|c| c.role == CoreRole::Shortcut).count();
    assert!(shortcut_cores > 0, "no shortcut normalization cores found");
    // One per (patch, channel) of the residual tail: 1 patch × 32 ch.
    assert_eq!(shortcut_cores, 32);
}

#[test]
fn paper_width_claim_2_to_the_11_weights() {
    // §II: "Having a 16 bit width allows us to sum up 2^11 5-bit weights
    // at the worst case."
    let worst = (1i64 << 11) * 15;
    assert!(worst <= i64::from(NocSum::MAX.value()));
    assert!(worst * 2 > i64::from(NocSum::MAX.value()));
}

#[test]
fn frequency_model_matches_paper_mlp_point() {
    // 40 fps × T=20 at the compiled MLP schedule must land near 120 kHz.
    let snn = snn_from_specs(&NetworkKind::MnistMlp.specs(), (28, 28, 1), 1).unwrap();
    let mapping = Mapper::new(ArchSpec::paper()).map(&snn).unwrap();
    let est = SystemEstimate::from_stats(
        &EnergyModel::paper(),
        &TileModel::paper(),
        &mapping.program.stats,
        mapping.logical.total_cores(),
        mapping.placement.chips,
        20,
        40.0,
    );
    let khz = est.frequency_hz / 1e3;
    assert!((105.0..135.0).contains(&khz), "MLP operating point {khz:.1} kHz vs paper 120 kHz");
    // Power within 2x of the paper's 1.26-1.35 mW.
    let mw = est.power.total_mw();
    assert!((0.6..2.7).contains(&mw), "MLP power {mw:.2} mW vs paper ~1.3 mW");
}
