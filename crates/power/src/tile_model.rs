//! The Fig. 5 single-tile power/frequency line.
//!
//! Fig. 5 reports the power of one tile (neuron core + NoC routers) at
//! six operating points. The points are collinear to high precision —
//! classic CMOS behaviour `P(f) = P_static + E_cycle · f` — and the fit
//! gives `P_static ≈ 74 µW` and `E_cycle ≈ 0.89 nJ/cycle`. The static
//! term is what the per-op energies of Table II do not contain, and is
//! the dominant term for large deployments at low frequency (which is
//! why Table IV's power-per-core stays near 0.13–0.15 mW across a 20×
//! frequency range).

use serde::{Deserialize, Serialize};

/// The six (frequency kHz, tile power µW) points of Fig. 5, paired with
/// their throughput targets in frames/second.
pub const FIG5_POINTS: [(u32, f64, f64); 6] = [
    (24, 73.0, 139.0),
    (30, 91.0, 155.0),
    (35, 106.0, 169.0),
    (40, 120.0, 181.0),
    (48, 145.0, 203.0),
    (60, 181.0, 235.0),
];

/// Linear tile power model `P(f) = P_static + E_cycle · f`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileModel {
    /// Static (leakage + clock idle) power per tile, in µW.
    pub static_uw: f64,
    /// Dynamic energy per clock cycle per tile, in nJ.
    pub energy_per_cycle_nj: f64,
}

impl TileModel {
    /// Least-squares fit of the Fig. 5 points.
    pub fn paper() -> TileModel {
        Self::fit(&FIG5_POINTS)
    }

    /// Least-squares fit of arbitrary `(fps, freq kHz, power µW)` points.
    pub fn fit(points: &[(u32, f64, f64)]) -> TileModel {
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.1).sum();
        let sy: f64 = points.iter().map(|p| p.2).sum();
        let sxx: f64 = points.iter().map(|p| p.1 * p.1).sum();
        let sxy: f64 = points.iter().map(|p| p.1 * p.2).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;
        TileModel {
            static_uw: intercept,
            // slope is µW per kHz = nJ per cycle.
            energy_per_cycle_nj: slope,
        }
    }

    /// Tile power at `freq_hz`, in µW.
    pub fn power_uw(&self, freq_hz: f64) -> f64 {
        self.static_uw + self.energy_per_cycle_nj * (freq_hz / 1e3)
    }

    /// The frequency (Hz) needed for a throughput of `fps` frames/second
    /// with `timesteps` per frame and `cycles_per_timestep` pipelined
    /// cycles.
    pub fn frequency_for(fps: f64, timesteps: u32, cycles_per_timestep: u64) -> f64 {
        fps * f64::from(timesteps) * cycles_per_timestep as f64
    }
}

impl Default for TileModel {
    fn default() -> Self {
        TileModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_reproduces_fig5_points() {
        let m = TileModel::paper();
        for (_, f_khz, p_uw) in FIG5_POINTS {
            let predicted = m.power_uw(f_khz * 1e3);
            assert!(
                (predicted - p_uw).abs() < 4.0,
                "{f_khz} kHz: predicted {predicted:.1} µW vs figure {p_uw}"
            );
        }
    }

    #[test]
    fn fitted_constants_in_expected_range() {
        let m = TileModel::paper();
        assert!((70.0..80.0).contains(&m.static_uw), "static {}", m.static_uw);
        assert!(
            (0.85..0.93).contains(&m.energy_per_cycle_nj),
            "per-cycle {}",
            m.energy_per_cycle_nj
        );
    }

    #[test]
    fn power_scales_up_with_frequency() {
        let m = TileModel::paper();
        // The paper: power grows 2.48x from 73 kHz (139 µW) to 181 kHz.
        let ratio = m.power_uw(181e3) / m.power_uw(73e3);
        assert!((ratio - 2.48 / 1.475).abs() < 0.35, "ratio {ratio}");
        assert!(m.power_uw(181e3) > m.power_uw(73e3));
    }

    #[test]
    fn frequency_for_paper_mlp_operating_point() {
        // 40 fps × 20 timesteps × ~150 cycles ≈ 120 kHz (the paper's MLP
        // operating frequency).
        let f = TileModel::frequency_for(40.0, 20, 150);
        assert_eq!(f, 120e3);
    }

    #[test]
    fn fit_exact_line() {
        let pts = [(1, 10.0, 120.0), (2, 20.0, 140.0), (3, 30.0, 160.0)];
        let m = TileModel::fit(&pts);
        assert!((m.static_uw - 100.0).abs() < 1e-9);
        assert!((m.energy_per_cycle_nj - 2.0).abs() < 1e-9);
    }
}
