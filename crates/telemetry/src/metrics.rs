//! Cheap always-on metric primitives behind a named registry.
//!
//! Three instrument kinds, all updatable from any thread without taking
//! the registry lock on the hot path (callers resolve an
//! [`Arc`]-handle once and then pay only atomic operations per event):
//!
//! * [`Counter`] — a monotonically increasing `u64`;
//! * [`Gauge`] — a signed instantaneous value (queue depth, lanes held);
//! * [`TimeHistogram`] — log2-bucketed durations with count and sum.
//!
//! [`Registry::render`] snapshots everything into the Prometheus text
//! exposition format. Metric names may carry a `{label="value"}` suffix
//! (counters and gauges only); entries sort lexicographically so one
//! `# TYPE` header covers each family.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log2 buckets a [`TimeHistogram`] keeps: the last bucket's
/// upper bound is 2^47 ns ≈ 39 hours, far beyond any serving latency.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A bounded-footprint duration histogram: samples land in log2 buckets
/// (upper bound of bucket `i` is `2^i` nanoseconds), so recording is
/// three relaxed atomic adds regardless of the observed range.
#[derive(Debug)]
pub struct TimeHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for TimeHistogram {
    fn default() -> TimeHistogram {
        TimeHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl TimeHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        // ns in (2^(i-1), 2^i] lands in bucket i (le bound 2^i ns);
        // zero and one land in bucket 0.
        let idx = (64 - ns.saturating_sub(1).leading_zeros()) as usize;
        self.buckets[idx.min(HISTOGRAM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    fn render_into(&self, name: &str, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = 2f64.powi(i as i32) / 1e9;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count());
        let _ = writeln!(out, "{name}_sum {}", self.sum_ns() as f64 / 1e9);
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// Named instruments, rendered together as one Prometheus snapshot.
///
/// Lookup is get-or-create and returns an [`Arc`] handle; hot paths
/// resolve their handles once at startup and never touch the registry
/// lock again.
///
/// ```
/// use shenjing_telemetry::Registry;
///
/// let registry = Registry::new();
/// let served = registry.counter("served_total{model=\"digits\"}");
/// served.add(3);
/// assert!(registry.render().contains("served_total{model=\"digits\"} 3"));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<TimeHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use. The
    /// name may carry a `{label="value"}` suffix; the part before `{`
    /// is the metric family.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("telemetry registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("telemetry registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, created on first use.
    /// Histogram names must be label-free (the `le` bucket label is
    /// appended at render time).
    pub fn histogram(&self, name: &str) -> Arc<TimeHistogram> {
        debug_assert!(!name.contains('{'), "histogram names must be label-free");
        let mut map = self.histograms.lock().expect("telemetry registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Renders every instrument in the Prometheus text exposition
    /// format, families sorted, one `# TYPE` header per family.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut family = String::new();
        for (name, counter) in self.counters.lock().expect("telemetry registry poisoned").iter() {
            let fam = name.split('{').next().unwrap_or(name);
            if fam != family {
                family = fam.to_string();
                let _ = writeln!(out, "# TYPE {fam} counter");
            }
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        family.clear();
        for (name, gauge) in self.gauges.lock().expect("telemetry registry poisoned").iter() {
            let fam = name.split('{').next().unwrap_or(name);
            if fam != family {
                family = fam.to_string();
                let _ = writeln!(out, "# TYPE {fam} gauge");
            }
            let _ = writeln!(out, "{name} {}", gauge.get());
        }
        for (name, hist) in self.histograms.lock().expect("telemetry registry poisoned").iter() {
            hist.render_into(name, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_by_family() {
        let registry = Registry::new();
        registry.counter("requests_total{model=\"a\"}").inc();
        registry.counter("requests_total{model=\"b\"}").add(2);
        registry.gauge("queue_depth").set(5);
        registry.gauge("queue_depth").sub(2);
        let text = registry.render();
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1);
        assert!(text.contains("requests_total{model=\"a\"} 1"));
        assert!(text.contains("requests_total{model=\"b\"} 2"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 3"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_log2() {
        let hist = TimeHistogram::default();
        hist.record(Duration::from_nanos(1)); // bucket le=1ns
        hist.record(Duration::from_nanos(3)); // bucket le=4ns
        hist.record(Duration::from_nanos(4)); // bucket le=4ns
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.sum_ns(), 8);
        let registry = Registry::new();
        let shared = registry.histogram("pass_seconds");
        shared.record(Duration::from_micros(10));
        let text = registry.render();
        assert!(text.contains("# TYPE pass_seconds histogram"));
        assert!(text.contains("pass_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("pass_seconds_count 1"));
    }

    #[test]
    fn registry_handles_are_shared() {
        let registry = Registry::new();
        let a = registry.counter("x_total");
        let b = registry.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }
}
