//! Offline stand-in for `proptest` (API subset).
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro over functions with `arg in strategy` parameters,
//! range strategies over integers and floats, [`any`] for `bool`,
//! [`collection::vec`] and [`collection::btree_set`], and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Each test function runs a fixed number of cases ([`CASES`]) drawn from
//! a SplitMix64 stream seeded by the test's name, so failures are
//! reproducible run to run. There is no shrinking: a failing case panics
//! with the sampled values available via the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs.
pub const CASES: usize = 64;

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test's name, stably across runs.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.next_unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo + 1) as u64;
        self.lo + (rng.next_u64() % span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // The element domain may be smaller than `target`; bail out
            // after a bounded number of duplicate draws.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub use collection::{BTreeSetStrategy, VecStrategy};

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            panic!(
                "property failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            panic!($($fmt)+);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5i32..5, y in 0u16..256, f in -1.0f64..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y < 256);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn collections_sized(
            v in crate::collection::vec(0u8..10, 3),
            w in crate::collection::vec(0u32..100, 1..6),
            s in crate::collection::btree_set(0u16..256, 0..40),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..6).contains(&w.len()));
            prop_assert!(s.len() < 40);
        }

        #[test]
        fn any_bool_varies(a in any::<bool>(), b in any::<bool>()) {
            // Not a tautology — just exercise the strategy.
            let _ = (a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
