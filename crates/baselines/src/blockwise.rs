//! Block-level spike aggregation: the prior-art alternative to PS NoCs.
//!
//! "When a layer cannot fit within a core, each core computes a partial
//! sum based on the subset of axons and synapses within the core, then
//! integrate and fire a spike. An aggregating core sums these spikes to
//! gain a representation of full weighted-sum and generates a final
//! output for the layer. This can lead to significant accuracy loss."
//! (§II of the paper.)
//!
//! [`BlockwiseSnn`] runs the *same* converted dense network as
//! [`shenjing_snn::SnnNetwork`], but splits every oversized layer into
//! core-sized blocks, thresholds each block's partial sum independently
//! (spike quantization), and re-integrates the 1-bit block spikes in an
//! aggregator neuron. Comparing its accuracy against the exact model
//! quantifies the gap that the partial-sum NoCs close.

use shenjing_core::{Error, Result};
use shenjing_nn::Tensor;
use shenjing_snn::{RateEncoder, SnnLayer, SnnNetwork, SnnOutput};

/// A block-level-aggregation re-interpretation of a converted dense SNN.
///
/// Only fully connected stacks are supported — which covers the paper's
/// headline comparison workload (MNIST MLP).
#[derive(Debug, Clone)]
pub struct BlockwiseSnn {
    layers: Vec<BlockLayer>,
    core_inputs: usize,
}

#[derive(Debug, Clone)]
struct BlockLayer {
    in_dim: usize,
    out_dim: usize,
    /// `[input][output]` weights.
    weights: Vec<i32>,
    /// Full-layer threshold.
    threshold: i32,
    /// Per-block threshold (the block's IF neurons).
    block_threshold: i32,
    blocks: usize,
    /// Per (block, output) potential.
    block_potentials: Vec<i64>,
    /// Aggregator potentials per output.
    agg_potentials: Vec<i64>,
}

impl BlockwiseSnn {
    /// Reinterprets a converted dense SNN under block-level aggregation
    /// with `core_inputs` axons per core.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the network contains
    /// non-dense layers or `core_inputs` is zero.
    pub fn new(snn: &SnnNetwork, core_inputs: usize) -> Result<BlockwiseSnn> {
        if core_inputs == 0 {
            return Err(Error::config("core_inputs must be positive"));
        }
        let mut layers = Vec::new();
        for layer in snn.layers() {
            let SnnLayer::Dense(d) = layer else {
                return Err(Error::config("block-level baseline supports dense stacks only"));
            };
            let blocks = d.in_dim().div_ceil(core_inputs).max(1);
            // Split the firing budget across blocks; prior architectures
            // retrain around this, we take the direct reinterpretation.
            let block_threshold = (d.threshold() / blocks as i32).max(1);
            layers.push(BlockLayer {
                in_dim: d.in_dim(),
                out_dim: d.out_dim(),
                weights: d.weights().iter().map(|w| w.value()).collect(),
                threshold: d.threshold(),
                block_threshold,
                blocks,
                block_potentials: vec![0; blocks * d.out_dim()],
                agg_potentials: vec![0; d.out_dim()],
            });
        }
        if layers.is_empty() {
            return Err(Error::config("network has no layers"));
        }
        Ok(BlockwiseSnn { layers, core_inputs })
    }

    /// Number of input lines.
    pub fn input_len(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Number of outputs.
    pub fn output_len(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Runs one frame, mirroring [`SnnNetwork::run`]'s contract.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] / [`Error::InvalidConfig`] on bad
    /// inputs.
    pub fn run(&mut self, input: &Tensor, timesteps: u32) -> Result<SnnOutput> {
        if input.len() != self.input_len() {
            return Err(Error::shape_mismatch(
                format!("{} inputs", self.input_len()),
                format!("{}", input.len()),
            ));
        }
        if timesteps == 0 {
            return Err(Error::config("timesteps must be positive"));
        }
        for layer in &mut self.layers {
            layer.block_potentials.iter_mut().for_each(|p| *p = 0);
            layer.agg_potentials.iter_mut().for_each(|p| *p = 0);
        }
        let mut encoder = RateEncoder::new(input);
        let out_len = self.output_len();
        let mut spike_counts = vec![0u32; out_len];
        let mut spikes_by_step = Vec::with_capacity(timesteps as usize);

        for _ in 0..timesteps {
            let mut spikes = encoder.next_timestep();
            for layer in &mut self.layers {
                spikes = layer.step(&spikes, self.core_inputs);
            }
            for (c, s) in spike_counts.iter_mut().zip(&spikes) {
                *c += u32::from(*s);
            }
            spikes_by_step.push(spikes);
        }
        Ok(SnnOutput {
            spike_counts,
            potentials: self.layers.last().expect("non-empty").agg_potentials.clone(),
            spikes_by_step,
        })
    }

    /// Predicted class for one frame.
    ///
    /// # Errors
    ///
    /// See [`run`](BlockwiseSnn::run).
    pub fn predict(&mut self, input: &Tensor, timesteps: u32) -> Result<usize> {
        Ok(self.run(input, timesteps)?.predicted_class())
    }

    /// Classification accuracy over a labelled dataset.
    ///
    /// # Errors
    ///
    /// See [`run`](BlockwiseSnn::run).
    pub fn evaluate(&mut self, data: &[(Tensor, usize)], timesteps: u32) -> Result<f64> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0;
        for (x, y) in data {
            if self.predict(x, timesteps)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

impl BlockLayer {
    fn step(&mut self, input: &[bool], core_inputs: usize) -> Vec<bool> {
        let mut out = vec![false; self.out_dim];
        if self.blocks == 1 {
            // Fits one core: identical to the exact model.
            for (o, out_spike) in out.iter_mut().enumerate() {
                let mut sum = 0i64;
                for (j, &s) in input.iter().enumerate() {
                    if s {
                        sum += i64::from(self.weights[j * self.out_dim + o]);
                    }
                }
                let p = &mut self.agg_potentials[o];
                *p += sum;
                if *p > i64::from(self.threshold) {
                    *p -= i64::from(self.threshold);
                    *out_spike = true;
                }
            }
            return out;
        }
        // Oversized layer: per-block partial IF, then spike aggregation.
        for (o, out_spike) in out.iter_mut().enumerate() {
            let mut block_spikes = 0i64;
            for b in 0..self.blocks {
                let lo = b * core_inputs;
                let hi = ((b + 1) * core_inputs).min(self.in_dim);
                let mut partial = 0i64;
                for (j, &s) in input.iter().enumerate().take(hi).skip(lo) {
                    if s {
                        partial += i64::from(self.weights[j * self.out_dim + o]);
                    }
                }
                let p = &mut self.block_potentials[b * self.out_dim + o];
                *p += partial;
                if *p > i64::from(self.block_threshold) {
                    *p -= i64::from(self.block_threshold);
                    block_spikes += 1;
                }
            }
            // Aggregator: each block spike is worth one block threshold of
            // weighted sum — the quantized representation of the total.
            let p = &mut self.agg_potentials[o];
            *p += block_spikes * i64::from(self.block_threshold);
            if *p > i64::from(self.threshold) {
                *p -= i64::from(self.threshold);
                *out_spike = true;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shenjing_core::W5;
    use shenjing_snn::SpikingDense;

    fn w(v: i32) -> W5 {
        W5::new(v).unwrap()
    }

    fn exact_and_blockwise(
        weights: Vec<W5>,
        in_dim: usize,
        out_dim: usize,
        threshold: i32,
        core_inputs: usize,
    ) -> (SnnNetwork, BlockwiseSnn) {
        let exact = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, in_dim, out_dim, threshold, 1.0).unwrap(),
        )])
        .unwrap();
        let blockwise = BlockwiseSnn::new(&exact, core_inputs).unwrap();
        (exact, blockwise)
    }

    #[test]
    fn single_block_matches_exact_model() {
        let (mut exact, mut block) =
            exact_and_blockwise(vec![w(5), w(-3), w(2), w(7)], 2, 2, 6, 16);
        let x = Tensor::from_vec(vec![2], vec![0.8, 0.6]).unwrap();
        let a = exact.run(&x, 20).unwrap();
        let b = block.run(&x, 20).unwrap();
        assert_eq!(a.spike_counts, b.spike_counts, "one core ⇒ no quantization");
    }

    #[test]
    fn negative_partials_are_lost_by_blockwise() {
        // 8 inputs split across 2 blocks of 4. Block 0 weights +4, block 1
        // weights -4: the exact total is always 0 (never fires with θ=8).
        // Blockwise: block 0's partial +16 fires block spikes while block
        // 1's negative partial can never emit "negative spikes", so the
        // aggregator sees a positive sum and fires — a wrong output.
        let mut weights = Vec::new();
        for j in 0..8 {
            weights.push(if j < 4 { w(4) } else { w(-4) });
        }
        let (mut exact, mut block) = exact_and_blockwise(weights, 8, 1, 8, 4);
        let x = Tensor::from_vec(vec![8], vec![1.0; 8]).unwrap();
        let a = exact.run(&x, 20).unwrap();
        let b = block.run(&x, 20).unwrap();
        assert_eq!(a.spike_counts[0], 0, "exact sum is zero");
        assert!(
            b.spike_counts[0] > 0,
            "block-level aggregation hallucinates spikes from the positive block"
        );
    }

    #[test]
    fn blockwise_rejects_non_dense() {
        let conv =
            shenjing_snn::SpikingConv::new(vec![W5::ZERO; 9], 3, 2, 2, 1, 1, 5, 1.0).unwrap();
        let snn = SnnNetwork::new(vec![SnnLayer::Conv(conv)]).unwrap();
        assert!(BlockwiseSnn::new(&snn, 16).is_err());
        let dense = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(vec![w(1); 4], 2, 2, 5, 1.0).unwrap(),
        )])
        .unwrap();
        assert!(BlockwiseSnn::new(&dense, 0).is_err());
    }

    #[test]
    fn run_contract_checks() {
        let (_, mut block) = exact_and_blockwise(vec![w(1); 4], 2, 2, 5, 16);
        assert!(block.run(&Tensor::zeros(vec![3]), 5).is_err());
        assert!(block.run(&Tensor::zeros(vec![2]), 0).is_err());
        assert_eq!(block.evaluate(&[], 5).unwrap(), 0.0);
    }

    #[test]
    fn frames_independent() {
        let (_, mut block) = exact_and_blockwise(vec![w(3); 40], 40, 1, 10, 16);
        let x = Tensor::from_vec(vec![40], vec![0.5; 40]).unwrap();
        let a = block.run(&x, 10).unwrap();
        let b = block.run(&x, 10).unwrap();
        assert_eq!(a, b);
    }
}
