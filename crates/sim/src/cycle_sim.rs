//! Executing compiled programs on the hardware component models.

use std::collections::BTreeMap;
use std::sync::Arc;

use shenjing_core::{ArchSpec, CoreCoord, Error, Result, W5};
use shenjing_hw::{AtomicOp, Chip};
use shenjing_mapper::{CompiledProgram, LogicalMapping};
use shenjing_nn::Tensor;
use shenjing_snn::{RateEncoder, SnnOutput};

/// A compiled program decoded into the form the simulators execute:
/// the schedule flattened into one cycle-ordered list, every logical
/// core's weight block materialized, thresholds and I/O maps resolved.
///
/// Decoding is the expensive, shareable part of standing up a simulator.
/// One `Arc<DecodedProgram>` can instantiate any number of [`CycleSim`]s
/// or [`BatchSim`](crate::BatchSim)s — the serving runtime's worker shards
/// each hold a chip replica but share this artifact.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    pub(crate) arch: ArchSpec,
    pub(crate) mesh_rows: u16,
    pub(crate) mesh_cols: u16,
    /// Ops per cycle, flattened from the configuration memories.
    pub(crate) schedule: Vec<(u64, Vec<(CoreCoord, AtomicOp)>)>,
    pub(crate) block_cycles: u64,
    pub(crate) input_map: Vec<Vec<(CoreCoord, u16)>>,
    pub(crate) output_map: Vec<(CoreCoord, u16)>,
    /// Materialized `LD_WT` payloads, one block per mapped core.
    pub(crate) weight_blocks: Vec<(CoreCoord, Vec<W5>)>,
    pub(crate) thresholds: Vec<(CoreCoord, u16, i32)>,
    /// The compacted schedule, attached by
    /// [`optimize`](DecodedProgram::optimize); `None` until then.
    pub(crate) compact: Option<crate::optimize::CompactSchedule>,
}

impl DecodedProgram {
    /// Decodes a compiled program: validates every coordinate the program
    /// references against the mesh and the mapped cores, materializes
    /// weight blocks, and indexes the schedule by cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] for ops, thresholds, or I/O slots
    /// referencing tiles/planes/axons outside the mesh or core
    /// dimensions, [`Error::InvalidConfig`] for thresholds targeting
    /// unmapped tiles, and [`Error::InvalidSchedule`] for ops scheduled
    /// past the timestep block.
    pub fn decode(
        arch: &ArchSpec,
        mapping: &LogicalMapping,
        program: &CompiledProgram,
    ) -> Result<DecodedProgram> {
        validate(arch, program)?;
        let mut weight_blocks = Vec::with_capacity(program.core_at.len());
        for (coord, core_id) in &program.core_at {
            let core = mapping.core(*core_id);
            let flat = &mapping.flat[core.layer];
            weight_blocks.push((*coord, core.materialize_weights(flat)));
        }

        let mut by_cycle: BTreeMap<u64, Vec<(CoreCoord, AtomicOp)>> = BTreeMap::new();
        for (coord, prog) in program.config.iter() {
            for (cycle, op) in prog.iter() {
                by_cycle.entry(cycle).or_default().push((coord, op.clone()));
            }
        }

        Ok(DecodedProgram {
            arch: arch.clone(),
            mesh_rows: program.mesh_rows,
            mesh_cols: program.mesh_cols,
            schedule: by_cycle.into_iter().collect(),
            block_cycles: program.block_cycles,
            input_map: program.input_map.clone(),
            output_map: program.output_map.clone(),
            weight_blocks,
            thresholds: program.thresholds.clone(),
            compact: None,
        })
    }

    /// The target architecture.
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// Number of external input lines the program expects.
    pub fn input_len(&self) -> usize {
        self.input_map.len()
    }

    /// Number of network outputs the program produces.
    pub fn output_len(&self) -> usize {
        self.output_map.len()
    }

    /// Cycles in one timestep block.
    pub fn block_cycles(&self) -> u64 {
        self.block_cycles
    }

    /// Mesh dimensions `(rows, cols)`.
    pub fn mesh_dims(&self) -> (u16, u16) {
        (self.mesh_rows, self.mesh_cols)
    }

    /// Whether [`optimize`](DecodedProgram::optimize) has attached a
    /// compacted schedule.
    pub fn optimized(&self) -> bool {
        self.compact.is_some()
    }

    /// The optimizer's statistics, when the program is optimized.
    pub fn optimize_stats(&self) -> Option<&crate::optimize::OptimizeStats> {
        self.compact.as_ref().map(crate::optimize::CompactSchedule::stats)
    }

    /// Entries the optimized walk executes per pass, when optimized
    /// (compare with [`block_cycles`](DecodedProgram::block_cycles) for
    /// the raw walk's count).
    pub fn compacted_cycles(&self) -> Option<u64> {
        self.compact.as_ref().map(|c| c.entries.len() as u64)
    }

    /// The compacted schedule entries, when optimized — the static
    /// structure the conflict analysis and the execution hot loops walk.
    pub fn compact_entries(&self) -> Option<&[shenjing_hw::sched::CycleOps]> {
        self.compact.as_ref().map(crate::optimize::CompactSchedule::entries)
    }
}

/// Decode-time program validation: every coordinate, plane, axon and
/// cycle the program references must be realizable on the target mesh.
/// Keeping this at the decode boundary means a `DecodedProgram` is
/// well-formed by construction — the optimizer and the execution hot
/// loops rely on it (pre-resolved tile indices index without checks).
fn validate(arch: &ArchSpec, program: &CompiledProgram) -> Result<()> {
    let (rows, cols) = (program.mesh_rows, program.mesh_cols);
    let on_mesh = |c: CoreCoord| c.row < rows && c.col < cols;
    let off = |what: &str, c: CoreCoord| {
        Error::out_of_bounds(format!("{what} at {c} outside the {rows}x{cols} mesh"))
    };

    for (coord, _) in &program.core_at {
        if !on_mesh(*coord) {
            return Err(off("mapped core", *coord));
        }
    }
    for (coord, prog) in program.config.iter() {
        if !on_mesh(coord) {
            return Err(off("scheduled op", coord));
        }
        for (cycle, op) in prog.iter() {
            if cycle >= program.block_cycles {
                return Err(Error::InvalidSchedule {
                    cycle,
                    reason: format!(
                        "{} at {coord} scheduled past the {}-cycle block",
                        op.qualified_mnemonic(),
                        program.block_cycles
                    ),
                });
            }
        }
    }
    let mapped: std::collections::BTreeSet<CoreCoord> =
        program.core_at.iter().map(|(c, _)| *c).collect();
    for (coord, plane, _) in &program.thresholds {
        if !on_mesh(*coord) {
            return Err(off("threshold", *coord));
        }
        if !mapped.contains(coord) {
            return Err(Error::config(format!("threshold targets unmapped tile {coord}")));
        }
        if *plane >= arch.core_neurons {
            return Err(Error::out_of_bounds(format!(
                "threshold plane {plane} of a {}-neuron core at {coord}",
                arch.core_neurons
            )));
        }
    }
    for slots in &program.input_map {
        for (coord, axon) in slots {
            if !on_mesh(*coord) {
                return Err(off("input slot", *coord));
            }
            if *axon >= arch.core_inputs {
                return Err(Error::out_of_bounds(format!(
                    "input axon {axon} of a {}-input core at {coord}",
                    arch.core_inputs
                )));
            }
        }
    }
    for (coord, plane) in &program.output_map {
        if !on_mesh(*coord) {
            return Err(off("output slot", *coord));
        }
        if *plane >= arch.core_neurons {
            return Err(Error::out_of_bounds(format!(
                "output plane {plane} of a {}-neuron core at {coord}",
                arch.core_neurons
            )));
        }
    }
    Ok(())
}

/// The cycle-level simulator: a [`Chip`] loaded with a compiled program.
#[derive(Debug, Clone)]
pub struct CycleSim {
    chip: Chip,
    program: Arc<DecodedProgram>,
    /// Execute the compacted schedule when the program carries one
    /// (default). Off = the raw cycle walk, retained as a reference mode.
    use_compact: bool,
    /// Accumulating phase profile while profiling is on (`None` = off).
    #[cfg(feature = "telemetry")]
    profile: Option<shenjing_telemetry::PassProfile>,
}

impl CycleSim {
    /// Builds a chip mesh, loads every tile's weights (the `LD_WT` phase)
    /// and thresholds, and indexes the schedule.
    ///
    /// # Errors
    ///
    /// Returns mapping/bounds errors when the program references tiles or
    /// planes outside the mesh.
    pub fn new(
        arch: &ArchSpec,
        mapping: &LogicalMapping,
        program: &CompiledProgram,
    ) -> Result<CycleSim> {
        CycleSim::from_decoded(Arc::new(DecodedProgram::decode(arch, mapping, program)?))
    }

    /// Instantiates a simulator from a shared decoded program (cheap: one
    /// chip allocation plus weight block loads, no re-decoding).
    ///
    /// # Errors
    ///
    /// Returns mapping/bounds errors when the program references tiles or
    /// planes outside the mesh.
    pub fn from_decoded(program: Arc<DecodedProgram>) -> Result<CycleSim> {
        let mut chip = Chip::new(&program.arch, program.mesh_rows, program.mesh_cols)?;
        for (coord, block) in &program.weight_blocks {
            // Row-prefix load: optimized programs trim trailing all-zero
            // axon rows; unoptimized blocks are full-length prefixes.
            chip.tile_mut(*coord)?.core_mut().load_weight_rows(block)?;
        }
        for (coord, plane, threshold) in &program.thresholds {
            chip.tile_mut(*coord)?.spike_mut().set_threshold(*plane, *threshold)?;
        }
        Ok(CycleSim {
            chip,
            program,
            use_compact: true,
            #[cfg(feature = "telemetry")]
            profile: None,
        })
    }

    /// Selects whether [`run_frame`](CycleSim::run_frame) executes the
    /// compacted schedule (when the program carries one — the default) or
    /// the raw per-cycle walk. The raw walk is retained as a reference
    /// mode; the two are bit-identical, a property
    /// [`equivalence::verify_compacted`](crate::equivalence::verify_compacted)
    /// checks and the equivalence proptests enforce.
    pub fn set_compaction(&mut self, on: bool) {
        self.use_compact = on;
    }

    /// Sets the number of OS threads compacted-schedule execution may fan
    /// an entry's conflict-free tile groups across (see
    /// [`Chip::set_exec_threads`](shenjing_hw::Chip::set_exec_threads)).
    /// `1` is the serial walk — the bit-exactness reference — and every
    /// thread count produces bit-identical outputs, chip state, and
    /// errors. The default comes from `SHENJING_NUM_THREADS` / available
    /// parallelism.
    pub fn set_intra_pass_threads(&mut self, threads: usize) {
        self.chip.set_exec_threads(threads);
    }

    /// The effective intra-pass thread count.
    pub fn intra_pass_threads(&self) -> usize {
        self.chip.exec_threads()
    }

    /// Test hook: worker-pool panic injection (see
    /// `Chip::set_panic_on_tile`).
    #[doc(hidden)]
    pub fn set_panic_on_tile(&mut self, tile: Option<usize>) {
        self.chip.set_panic_on_tile(tile);
    }

    /// Starts (or stops) per-pass phase profiling: while on, every
    /// [`run_frame`](CycleSim::run_frame) accumulates ACC / SEND /
    /// transfer / drain wall-clock time and active-axon counts into a
    /// [`PassProfile`](shenjing_telemetry::PassProfile). Off by
    /// default — the unprofiled cycle loop is untouched.
    #[cfg(feature = "telemetry")]
    pub fn set_profiling(&mut self, on: bool) {
        if on {
            self.profile.get_or_insert_with(Default::default);
        } else {
            self.profile = None;
        }
    }

    /// Takes the accumulated profile, stopping profiling. `None` when
    /// profiling was never started (or already taken).
    #[cfg(feature = "telemetry")]
    pub fn take_profile(&mut self) -> Option<shenjing_telemetry::PassProfile> {
        self.profile.take()
    }

    /// The mesh.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Switches the underlying chip between the optimized sparse hot path
    /// (activity-indexed `ACC`, occupancy-masked transfer) and the retained
    /// dense reference semantics. Both are bit-identical — outputs,
    /// membrane state and error cycles — a property
    /// [`equivalence::verify_sequential`](crate::equivalence::verify_sequential)
    /// checks and the sequential equivalence proptest enforces.
    pub fn set_reference_mode(&mut self, on: bool) {
        self.chip.set_reference_mode(on);
    }

    /// The shared decoded program this simulator executes.
    pub fn decoded(&self) -> &Arc<DecodedProgram> {
        &self.program
    }

    /// Cycles in one timestep block.
    pub fn block_cycles(&self) -> u64 {
        self.program.block_cycles
    }

    /// Runs one inference frame: `timesteps` of rate-coded input.
    ///
    /// Returns the same [`SnnOutput`] shape as the abstract model so the
    /// two can be compared directly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when the input length differs
    /// from the mapped network's, and propagates any hardware-level
    /// schedule violation (which would indicate a compiler bug).
    pub fn run_frame(&mut self, input: &Tensor, timesteps: u32) -> Result<SnnOutput> {
        if input.len() != self.program.input_map.len() {
            return Err(Error::shape_mismatch(
                format!("{} inputs", self.program.input_map.len()),
                format!("{}", input.len()),
            ));
        }
        if timesteps == 0 {
            return Err(Error::config("timesteps must be positive"));
        }
        self.chip.reset_frame();
        let mut encoder = RateEncoder::new(input);
        let out_len = self.program.output_map.len();
        let mut spike_counts = vec![0u32; out_len];
        let mut spikes_by_step = Vec::with_capacity(timesteps as usize);
        #[cfg(feature = "telemetry")]
        let profiling = self.profile.is_some();
        #[cfg(feature = "telemetry")]
        let mut phases = shenjing_hw::CyclePhases::default();
        let compact = if self.use_compact { self.program.compact.as_ref() } else { None };
        #[cfg(feature = "telemetry")]
        let pass_cycles = compact.map_or(self.program.block_cycles, |c| c.entries.len() as u64);

        for _ in 0..timesteps {
            // Fresh axons; inject this timestep's input spikes.
            self.chip.clear_axons();
            let spikes = encoder.next_timestep();
            for (i, spiking) in spikes.iter().enumerate() {
                if !spiking {
                    continue;
                }
                for (coord, axon) in &self.program.input_map[i] {
                    self.chip.tile_mut(*coord)?.core_mut().set_axon(*axon, true)?;
                }
            }
            #[cfg(feature = "telemetry")]
            if profiling {
                if let Some(p) = self.profile.as_mut() {
                    p.active_axon_steps += self.chip.active_axon_count() as u64;
                }
            }

            // Execute the static block: the compacted entries when the
            // program is optimized, the raw per-cycle walk otherwise.
            if let Some(compact) = compact {
                for entry in compact.entries() {
                    #[cfg(feature = "telemetry")]
                    if profiling {
                        self.chip.exec_ops_phased(entry, &mut phases)?;
                        continue;
                    }
                    self.chip.exec_ops(entry)?;
                }
            } else {
                let mut idx = 0usize;
                for cycle in 0..self.program.block_cycles {
                    let schedule = &self.program.schedule;
                    let ops: &[(CoreCoord, AtomicOp)] =
                        if idx < schedule.len() && schedule[idx].0 == cycle {
                            let ops = &schedule[idx].1;
                            idx += 1;
                            ops
                        } else {
                            &[]
                        };
                    #[cfg(feature = "telemetry")]
                    if profiling {
                        self.chip.exec_cycle_phased(cycle, ops, &mut phases)?;
                        continue;
                    }
                    self.chip.exec_cycle(cycle, ops)?;
                }
            }

            // Read output spikes, then clear network state (potentials
            // persist across timesteps).
            let mut step = vec![false; out_len];
            for (o, (coord, plane)) in self.program.output_map.iter().enumerate() {
                let fired = self.chip.tile(*coord)?.spike().spike_buffer(*plane);
                step[o] = fired;
                spike_counts[o] += u32::from(fired);
            }
            spikes_by_step.push(step);
            self.chip.reset_network_state();
        }

        let potentials = self
            .program
            .output_map
            .iter()
            .map(|(coord, plane)| Ok(i64::from(self.chip.tile(*coord)?.spike().potential(*plane))))
            .collect::<Result<Vec<i64>>>()?;

        #[cfg(feature = "telemetry")]
        if let Some(p) = self.profile.as_mut() {
            p.passes += 1;
            p.timesteps += u64::from(timesteps);
            p.cycles += u64::from(timesteps) * pass_cycles;
            p.acc_ns += phases.acc_ns;
            p.send_ns += phases.send_ns;
            p.transfer_ns += phases.transfer_ns;
            p.drain_ns += phases.drain_ns;
            p.op_wall_ns += phases.op_wall_ns;
        }

        Ok(SnnOutput { spike_counts, potentials, spikes_by_step })
    }

    /// Predicted class for one frame.
    ///
    /// # Errors
    ///
    /// See [`run_frame`](CycleSim::run_frame).
    pub fn predict(&mut self, input: &Tensor, timesteps: u32) -> Result<usize> {
        Ok(self.run_frame(input, timesteps)?.predicted_class())
    }

    /// Classification accuracy over a labelled dataset.
    ///
    /// # Errors
    ///
    /// See [`run_frame`](CycleSim::run_frame).
    pub fn evaluate(&mut self, data: &[(Tensor, usize)], timesteps: u32) -> Result<f64> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for (x, y) in data {
            if self.predict(x, timesteps)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shenjing_core::W5;
    use shenjing_mapper::Mapper;
    use shenjing_snn::{SnnLayer, SnnNetwork, SpikingDense};

    fn w(v: i32) -> W5 {
        W5::new(v).unwrap()
    }

    fn build_sim(snn: &SnnNetwork, arch: &ArchSpec) -> CycleSim {
        let mapping = Mapper::new(arch.clone()).map(snn).unwrap();
        CycleSim::new(arch, &mapping.logical, &mapping.program).unwrap()
    }

    #[test]
    fn single_core_dense_matches_hand_computation() {
        // 2 inputs → 2 outputs, weights [[10, -10], [5, 5]], θ = 8.
        let arch = ArchSpec::tiny();
        let weights = vec![w(10), w(-10), w(5), w(5)];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 2, 2, 8, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        // Input [1.0, 0.0]: every step neuron 0 integrates 10 > 8 → fires.
        let input = Tensor::from_vec(vec![2], vec![1.0, 0.0]).unwrap();
        let out = sim.run_frame(&input, 10).unwrap();
        assert_eq!(out.spike_counts[0], 10);
        assert_eq!(out.spike_counts[1], 0);
    }

    #[test]
    fn multi_core_fold_equals_single_core_math() {
        // 40 inputs (3 cores on the tiny arch) all weight 1, θ = 39:
        // when every input spikes the exact PS-NoC sum is 40 > 39 → fire.
        // A lossy (spike-quantized) aggregation could never see 40.
        let arch = ArchSpec::tiny();
        let weights = vec![w(1); 40];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 40, 1, 39, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        let input = Tensor::from_vec(vec![40], vec![1.0; 40]).unwrap();
        let out = sim.run_frame(&input, 5).unwrap();
        assert_eq!(out.spike_counts[0], 5, "exact cross-core sum fires every step");
    }

    #[test]
    fn frames_are_reproducible() {
        let arch = ArchSpec::tiny();
        let weights = vec![w(3); 8 * 4];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 8, 4, 10, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        let input = Tensor::from_vec(vec![8], vec![0.6; 8]).unwrap();
        let a = sim.run_frame(&input, 12).unwrap();
        let b = sim.run_frame(&input, 12).unwrap();
        assert_eq!(a, b);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn profiling_accounts_passes_and_stays_bit_exact() {
        let arch = ArchSpec::tiny();
        let weights = vec![w(3); 8 * 4];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 8, 4, 10, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        let input = Tensor::from_vec(vec![8], vec![0.6; 8]).unwrap();
        let plain = sim.run_frame(&input, 12).unwrap();
        assert!(sim.take_profile().is_none(), "profiling is off by default");

        sim.set_profiling(true);
        let profiled = sim.run_frame(&input, 12).unwrap();
        assert_eq!(profiled, plain, "profiling must not perturb results");
        let p = sim.take_profile().unwrap();
        assert_eq!(p.passes, 1);
        assert_eq!(p.timesteps, 12);
        assert_eq!(p.cycles, 12 * sim.block_cycles());
        assert_eq!(p.occupied_lane_steps, 0, "the sequential engine has no lanes");
        assert!(p.active_axon_steps > 0, "0.6-rate inputs must activate axons");
        assert!(p.total_phase_ns() > 0, "phases must attribute some time");
        assert!(sim.take_profile().is_none(), "take_profile stops profiling");
    }

    #[test]
    fn input_validation() {
        let arch = ArchSpec::tiny();
        let weights = vec![w(1); 4];
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 2, 2, 5, 1.0).unwrap(),
        )])
        .unwrap();
        let mut sim = build_sim(&snn, &arch);
        assert!(sim.run_frame(&Tensor::zeros(vec![3]), 5).is_err());
        assert!(sim.run_frame(&Tensor::zeros(vec![2]), 0).is_err());
        assert_eq!(sim.evaluate(&[], 5).unwrap(), 0.0);
    }

    mod decode_validation {
        use super::*;
        use shenjing_hw::{AtomicOp, NeuronCoreOp};
        use shenjing_mapper::Mapping;

        fn mlp_mapping(arch: &ArchSpec) -> Mapping {
            let weights = vec![w(3); 8 * 4];
            let snn = SnnNetwork::new(vec![SnnLayer::Dense(
                SpikingDense::new(weights, 8, 4, 10, 1.0).unwrap(),
            )])
            .unwrap();
            Mapper::new(arch.clone()).map(&snn).unwrap()
        }

        fn decode_err(
            mutate: impl FnOnce(&mut shenjing_mapper::CompiledProgram),
        ) -> shenjing_core::Error {
            let arch = ArchSpec::tiny();
            let mapping = mlp_mapping(&arch);
            let mut program = mapping.program.clone();
            mutate(&mut program);
            DecodedProgram::decode(&arch, &mapping.logical, &program)
                .expect_err("mutated program must fail decode")
        }

        #[test]
        fn valid_program_decodes() {
            let arch = ArchSpec::tiny();
            let mapping = mlp_mapping(&arch);
            assert!(DecodedProgram::decode(&arch, &mapping.logical, &mapping.program).is_ok());
        }

        #[test]
        fn op_off_the_mesh_is_rejected() {
            let err = decode_err(|p| {
                p.config
                    .program_mut(CoreCoord::new(99, 99))
                    .push(0, AtomicOp::Core(NeuronCoreOp::Acc { banks: 1 }));
            });
            assert!(matches!(err, Error::OutOfBounds { .. }), "{err}");
        }

        #[test]
        fn op_past_the_block_is_rejected() {
            let err = decode_err(|p| {
                let coord = p.core_at[0].0;
                let cycle = p.block_cycles;
                p.config
                    .program_mut(coord)
                    .push(cycle, AtomicOp::Core(NeuronCoreOp::Acc { banks: 1 }));
            });
            match err {
                Error::InvalidSchedule { cycle, .. } => {
                    assert!(cycle > 0, "reports the offending cycle")
                }
                other => panic!("expected InvalidSchedule, got {other}"),
            }
        }

        #[test]
        fn threshold_off_mesh_unmapped_or_bad_plane_rejected() {
            let err = decode_err(|p| p.thresholds.push((CoreCoord::new(99, 99), 0, 5)));
            assert!(matches!(err, Error::OutOfBounds { .. }), "{err}");

            let err = decode_err(|p| {
                let coord = p.core_at[0].0;
                p.thresholds.push((coord, u16::MAX, 5));
            });
            assert!(matches!(err, Error::OutOfBounds { .. }), "{err}");
        }

        #[test]
        fn io_maps_are_validated() {
            let err = decode_err(|p| {
                let coord = p.core_at[0].0;
                p.input_map[0].push((coord, u16::MAX));
            });
            assert!(matches!(err, Error::OutOfBounds { .. }), "{err}");

            let err = decode_err(|p| p.input_map[0].push((CoreCoord::new(99, 99), 0)));
            assert!(matches!(err, Error::OutOfBounds { .. }), "{err}");

            let err = decode_err(|p| {
                let coord = p.core_at[0].0;
                p.output_map.push((coord, u16::MAX));
            });
            assert!(matches!(err, Error::OutOfBounds { .. }), "{err}");
        }

        #[test]
        fn mapped_core_off_the_mesh_is_rejected() {
            let err = decode_err(|p| {
                let id = p.core_at[0].1;
                p.core_at.push((CoreCoord::new(99, 99), id));
            });
            assert!(matches!(err, Error::OutOfBounds { .. }), "{err}");
        }
    }

    mod compaction {
        use super::*;

        fn decoded(arch: &ArchSpec) -> DecodedProgram {
            let weights = vec![w(3); 8 * 4];
            let snn = SnnNetwork::new(vec![SnnLayer::Dense(
                SpikingDense::new(weights, 8, 4, 10, 1.0).unwrap(),
            )])
            .unwrap();
            let mapping = Mapper::new(arch.clone()).map(&snn).unwrap();
            DecodedProgram::decode(arch, &mapping.logical, &mapping.program).unwrap()
        }

        #[test]
        fn compacted_run_is_bit_exact_with_raw() {
            let arch = ArchSpec::tiny();
            let program = Arc::new(decoded(&arch).optimize());
            let mut compacted = CycleSim::from_decoded(Arc::clone(&program)).unwrap();
            let mut raw = CycleSim::from_decoded(program).unwrap();
            raw.set_compaction(false);
            let input = Tensor::from_vec(vec![8], vec![0.6; 8]).unwrap();
            assert_eq!(
                compacted.run_frame(&input, 12).unwrap(),
                raw.run_frame(&input, 12).unwrap()
            );
        }

        #[cfg(feature = "telemetry")]
        #[test]
        fn profiling_counts_compacted_cycles() {
            let arch = ArchSpec::tiny();
            let program = Arc::new(decoded(&arch).optimize());
            let compacted_cycles = program.compacted_cycles().unwrap();
            assert!(compacted_cycles < program.block_cycles());
            let mut sim = CycleSim::from_decoded(program).unwrap();
            sim.set_profiling(true);
            let input = Tensor::from_vec(vec![8], vec![0.6; 8]).unwrap();
            sim.run_frame(&input, 5).unwrap();
            let p = sim.take_profile().unwrap();
            assert_eq!(p.cycles, 5 * compacted_cycles, "profile counts executed entries");
        }
    }
}
