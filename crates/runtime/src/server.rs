//! The scheduler/serving layer: request queue, batching policy, workers,
//! and the adaptive per-batch engine dispatch.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use shenjing_core::{Error, Result};
use shenjing_nn::Tensor;
use shenjing_snn::SnnOutput;

use crate::engine::{Engine, EngineKind};
use crate::model::CompiledModel;
use crate::stats::{RuntimeStats, StatsInner};

/// How a [`Runtime`] picks the engine for each gathered batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnginePolicy {
    /// Measure and decide per batch (see [`RuntimeConfig::engine`]).
    #[default]
    Auto,
    /// Always run frames one at a time on the sequential engine.
    ForceSequential,
    /// Always run gathered batches on the batched engine.
    ForceBatched,
}

/// Batching and sharding policy of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker shards; each owns one chip replica per enabled engine.
    pub workers: usize,
    /// Largest batch a worker executes in one pass (its lane count).
    pub max_batch: usize,
    /// How long a worker holds an under-full batch open for stragglers,
    /// measured from the oldest queued request's enqueue time.
    pub max_wait: Duration,
    /// Rate-coding spike-train length applied to every frame (batches
    /// must be uniform: the block schedule is static).
    pub timesteps: u32,
    /// Engine dispatch policy. With the batched engine occupancy-bound
    /// (its plan occupies exactly the gathered lanes, so an `n`-frame
    /// batch pays for `n` lanes of payload plus one control-word walk),
    /// *both* engines' costs scale with the frame count, and the
    /// crossover reduces to a marginal-cost comparison. In
    /// [`Auto`](EnginePolicy::Auto) mode each worker EMA-measures, per
    /// engine, the nanoseconds per cost unit it observes as it serves —
    /// per frame for the sequential engine, per occupied lane for the
    /// batched one, bucketed by batch occupancy so the batched engine's
    /// fixed-cost amortization (its per-lane unit falls as batches fill)
    /// never prices one occupancy with another's measurement; activity
    /// density shifts are captured by the measurement — and runs a batch
    /// of `n ≥ 2`
    /// frames on whichever engine's unit cost is lower; a batch of one
    /// always runs sequentially (nothing to amortize), and multi-frame
    /// batches are periodically diverted to the non-preferred engine so
    /// both estimates keep tracking the traffic. Force modes pin the
    /// engine for experiments and regression benches.
    pub engine: EnginePolicy,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            workers: 2,
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            timesteps: 20,
            engine: EnginePolicy::Auto,
        }
    }
}

impl RuntimeConfig {
    fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(Error::config("runtime needs at least one worker"));
        }
        if self.max_batch == 0 {
            return Err(Error::config("max_batch must be positive"));
        }
        if self.timesteps == 0 {
            return Err(Error::config("timesteps must be positive"));
        }
        Ok(())
    }
}

/// One answered inference request.
#[derive(Debug, Clone)]
pub struct InferenceReply {
    /// The frame's full spiking output.
    pub output: SnnOutput,
    /// Convenience: `output.predicted_class()`.
    pub predicted: usize,
    /// Enqueue→reply latency.
    pub latency: Duration,
    /// Which worker shard served the request.
    pub worker: usize,
    /// How many frames shared the batch this request rode in.
    pub batch_size: usize,
    /// Which engine the dispatch policy ran the batch on.
    pub engine: EngineKind,
}

struct Request {
    input: Tensor,
    enqueued: Instant,
    reply: mpsc::Sender<Result<InferenceReply>>,
}

struct QueueInner {
    pending: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueInner>,
    /// Signalled on submit and on shutdown.
    arrivals: Condvar,
    stats: Mutex<StatsInner>,
    started: Instant,
    config: RuntimeConfig,
}

/// A handle on a submitted request; resolve it with
/// [`wait`](PendingReply::wait).
#[derive(Debug)]
pub struct PendingReply {
    rx: mpsc::Receiver<Result<InferenceReply>>,
}

impl PendingReply {
    /// Blocks until the runtime answers.
    ///
    /// # Errors
    ///
    /// Propagates the frame's simulation error, or
    /// [`Error::InvalidConfig`] when the runtime shut down before
    /// answering.
    pub fn wait(self) -> Result<InferenceReply> {
        self.rx.recv().unwrap_or_else(|_| Err(Error::config("runtime shut down before answering")))
    }
}

/// A batched, sharded inference server over a [`CompiledModel`] with
/// adaptive engine dispatch.
///
/// Requests enter one shared queue; each of `workers` shards owns chip
/// replicas of the enabled engines, gathers up to `max_batch` requests
/// (waiting at most `max_wait` from the oldest request for stragglers),
/// and advances them on whichever engine the [`EnginePolicy`] picks —
/// bit-identically either way.
///
/// ```
/// use shenjing_core::{ArchSpec, W5};
/// use shenjing_nn::Tensor;
/// use shenjing_runtime::{CompiledModel, Runtime, RuntimeConfig};
/// use shenjing_snn::{SnnLayer, SnnNetwork, SpikingDense};
///
/// let snn = SnnNetwork::new(vec![SnnLayer::Dense(
///     SpikingDense::new(vec![W5::new(4)?; 8], 4, 2, 6, 1.0)?,
/// )])?;
/// let model = CompiledModel::compile(&ArchSpec::tiny(), &snn)?;
/// let runtime = Runtime::start(model, RuntimeConfig::default())?;
/// let reply = runtime.infer(Tensor::from_vec(vec![4], vec![1.0, 0.5, 0.0, 0.25])?)?;
/// assert_eq!(reply.output.spike_counts.len(), 2);
/// let stats = runtime.shutdown()?;
/// assert_eq!(stats.completed, 1);
/// # Ok::<(), shenjing_core::Error>(())
/// ```
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    input_len: usize,
}

/// One engine replica a worker can dispatch to, with its measured cost.
struct EngineSlot {
    engine: Box<dyn Engine>,
    /// EMA'd nanoseconds per cost unit — per frame for the sequential
    /// engine, per occupied lane for the batched one — **bucketed by
    /// batch occupancy** (`unit_ns[frames]`, index 0 unused). The
    /// batched engine's fixed control-word walk amortizes across more
    /// lanes in fuller batches, so its per-lane unit falls with
    /// occupancy; a single scalar EMA learned at one occupancy would
    /// misprice another (e.g. a full-batch unit applied to a 2-frame
    /// batch hides the fixed cost). The sequential engine's unit is flat
    /// across occupancies; its buckets simply converge. Activity density
    /// moves every bucket, which is why they keep being re-measured —
    /// see [`pick_engine`]'s probes.
    unit_ns: Vec<Option<f64>>,
}

impl EngineSlot {
    fn new(engine: Box<dyn Engine>, max_batch: usize) -> EngineSlot {
        EngineSlot { engine, unit_ns: vec![None; max_batch + 1] }
    }

    /// Folds one measured batch (`busy / frames`) into its occupancy
    /// bucket.
    fn record(&mut self, frames: usize, unit: f64) {
        if let Some(slot) = self.unit_ns.get_mut(frames) {
            *slot = ema(*slot, unit);
        }
    }

    /// The unit-cost estimate for a batch of `frames`: this occupancy's
    /// own EMA when measured, otherwise the nearest measured occupancy's
    /// — the closest point on the amortization curve observed so far.
    fn estimate(&self, frames: usize) -> Option<f64> {
        if let Some(unit) = self.unit_ns.get(frames).copied().flatten() {
            return Some(unit);
        }
        (1..self.unit_ns.len())
            .filter_map(|n| self.unit_ns[n].map(|u| (n.abs_diff(frames), u)))
            .min_by_key(|&(distance, _)| distance)
            .map(|(_, unit)| unit)
    }
}

/// One worker shard's engines: replicas are only instantiated for the
/// engines its policy can dispatch to.
struct WorkerEngines {
    sequential: Option<EngineSlot>,
    batched: Option<EngineSlot>,
    probes: ProbeState,
}

impl WorkerEngines {
    fn estimate(&self, kind: EngineKind, frames: usize) -> Option<f64> {
        match kind {
            EngineKind::Sequential => self.sequential.as_ref().and_then(|s| s.estimate(frames)),
            EngineKind::Batched => self.batched.as_ref().and_then(|s| s.estimate(frames)),
        }
    }

    fn slot_mut(&mut self, kind: EngineKind) -> &mut EngineSlot {
        match kind {
            EngineKind::Sequential => self.sequential.as_mut(),
            EngineKind::Batched => self.batched.as_mut(),
        }
        .expect("the policy keeps a replica for every engine it can pick")
    }
}

/// EMA smoothing factor for the engine cost measurements.
const TIMING_ALPHA: f64 = 0.3;

/// In auto mode, every this-many multi-frame batches that the crossover
/// prefers one engine for are diverted to the *other* engine instead.
/// Only the chosen engine's EMA updates, so without probes a stale (or
/// never-seeded) estimate locks the dispatch in: a pessimistic batched
/// EMA would pin sequential forever, and under sustained multi-frame
/// traffic the sequential EMA would never even be seeded (batches of one
/// are its only other source). Symmetric periodic probes bound both
/// failure modes to one diverted batch per interval.
const ENGINE_PROBE_INTERVAL: u32 = 16;

/// Per-engine probe countdowns (see [`ENGINE_PROBE_INTERVAL`]).
#[derive(Debug, Clone, Copy)]
struct ProbeState {
    sequential: u32,
    batched: u32,
}

impl Default for ProbeState {
    fn default() -> ProbeState {
        ProbeState { sequential: ENGINE_PROBE_INTERVAL, batched: ENGINE_PROBE_INTERVAL }
    }
}

fn ema(old: Option<f64>, sample: f64) -> Option<f64> {
    Some(match old {
        None => sample,
        Some(v) => v * (1.0 - TIMING_ALPHA) + sample * TIMING_ALPHA,
    })
}

/// The dispatch decision for a gathered batch of `frames` requests (see
/// [`RuntimeConfig::engine`] for the heuristic): a marginal-cost model
/// comparing the EMA'd per-occupied-lane batched cost against the
/// per-frame sequential cost — with occupancy-bound execution, an
/// `n`-frame batch costs ≈ `n × unit` on either engine, so the units
/// compare directly at every `n ≥ 2`. `probes` is the worker's
/// [`ENGINE_PROBE_INTERVAL`] state.
fn pick_engine(
    policy: EnginePolicy,
    frames: usize,
    seq_unit_ns: Option<f64>,
    batch_unit_ns: Option<f64>,
    probes: &mut ProbeState,
) -> EngineKind {
    match policy {
        EnginePolicy::ForceSequential => EngineKind::Sequential,
        EnginePolicy::ForceBatched => EngineKind::Batched,
        EnginePolicy::Auto => {
            if frames <= 1 {
                // A batch of one has nothing to amortize the SoA pass
                // over; the sequential engine is never slower there.
                return EngineKind::Sequential;
            }
            let preferred = match (seq_unit_ns, batch_unit_ns) {
                (Some(seq), Some(lane)) if seq < lane => EngineKind::Sequential,
                // Before both EMAs exist, favor the batched engine (it
                // amortizes whatever the batch holds); the sequential
                // probe below seeds the missing measurement.
                _ => EngineKind::Batched,
            };
            match preferred {
                EngineKind::Sequential => {
                    if probes.batched == 0 {
                        probes.batched = ENGINE_PROBE_INTERVAL;
                        return EngineKind::Batched;
                    }
                    probes.batched -= 1;
                }
                EngineKind::Batched => {
                    if probes.sequential == 0 {
                        probes.sequential = ENGINE_PROBE_INTERVAL;
                        return EngineKind::Sequential;
                    }
                    probes.sequential -= 1;
                }
            }
            preferred
        }
    }
}

impl Runtime {
    /// Compiles nothing — the model is already built — but instantiates
    /// the per-worker chip replicas the dispatch policy needs and starts
    /// the shards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero worker/batch/timestep
    /// configuration and propagates replica instantiation errors.
    pub fn start(model: CompiledModel, config: RuntimeConfig) -> Result<Runtime> {
        config.validate()?;
        let input_len = model.input_len();
        // Instantiate every replica before spawning anything, so a bad
        // program fails fast on the caller's thread.
        let mut engines = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let sequential: Option<EngineSlot> = match config.engine {
                EnginePolicy::ForceBatched => None,
                _ => Some(EngineSlot::new(Box::new(model.instantiate()?), config.max_batch)),
            };
            let batched: Option<EngineSlot> = match config.engine {
                EnginePolicy::ForceSequential => None,
                _ => Some(EngineSlot::new(
                    Box::new(model.instantiate_batched(config.max_batch)?),
                    config.max_batch,
                )),
            };
            engines.push(WorkerEngines { sequential, batched, probes: ProbeState::default() });
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueInner { pending: VecDeque::new(), shutdown: false }),
            arrivals: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            started: Instant::now(),
            config,
        });
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(id, engines)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(id, engines, &shared))
            })
            .collect();
        Ok(Runtime { shared, workers, input_len })
    }

    /// Enqueues one frame and returns immediately with a handle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] for a wrong-length input and
    /// [`Error::InvalidConfig`] after shutdown.
    pub fn submit(&self, input: Tensor) -> Result<PendingReply> {
        if input.len() != self.input_len {
            return Err(Error::shape_mismatch(
                format!("{} inputs", self.input_len),
                format!("{}", input.len()),
            ));
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            if queue.shutdown {
                return Err(Error::config("runtime is shut down"));
            }
            queue.pending.push_back(Request { input, enqueued: Instant::now(), reply: tx });
        }
        self.shared.arrivals.notify_one();
        Ok(PendingReply { rx })
    }

    /// Submits one frame and blocks for its reply.
    ///
    /// # Errors
    ///
    /// See [`submit`](Runtime::submit) and [`PendingReply::wait`].
    pub fn infer(&self, input: Tensor) -> Result<InferenceReply> {
        self.submit(input)?.wait()
    }

    /// Submits every frame, then waits for all replies in input order.
    ///
    /// # Errors
    ///
    /// Fails on the first frame whose submission or execution fails.
    pub fn infer_many(&self, inputs: &[Tensor]) -> Result<Vec<InferenceReply>> {
        let pending: Vec<PendingReply> =
            inputs.iter().map(|x| self.submit(x.clone())).collect::<Result<_>>()?;
        pending.into_iter().map(PendingReply::wait).collect()
    }

    /// A snapshot of the aggregate serving statistics.
    pub fn stats(&self) -> RuntimeStats {
        let inner = self.shared.stats.lock().expect("stats lock");
        RuntimeStats::snapshot(&inner, self.shared.started.elapsed())
    }

    /// Stops accepting requests, drains the queue, joins the workers and
    /// returns the final statistics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if a worker panicked.
    pub fn shutdown(mut self) -> Result<RuntimeStats> {
        self.begin_shutdown();
        let workers = std::mem::take(&mut self.workers);
        for handle in workers {
            handle.join().map_err(|_| Error::config("runtime worker panicked"))?;
        }
        Ok(self.stats())
    }

    fn begin_shutdown(&self) {
        let mut queue = self.shared.queue.lock().expect("queue lock");
        queue.shutdown = true;
        drop(queue);
        self.shared.arrivals.notify_all();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // `shutdown()` already joined; otherwise stop the shards so the
        // process does not leak blocked threads.
        self.begin_shutdown();
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}

/// Gathers a batch according to the max-batch/max-wait policy, picks an
/// engine per the dispatch policy, runs it, and answers every request in
/// it. On shutdown, drains the queue first.
fn worker_loop(id: usize, mut engines: WorkerEngines, shared: &Shared) {
    let config = &shared.config;
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("queue lock");
            // Sleep until there is work or the runtime stops.
            while queue.pending.is_empty() {
                if queue.shutdown {
                    return;
                }
                queue = shared.arrivals.wait(queue).expect("queue lock");
            }
            // Hold the batch open for stragglers, bounded by the oldest
            // request's deadline.
            let deadline = queue.pending.front().expect("non-empty").enqueued + config.max_wait;
            while queue.pending.len() < config.max_batch && !queue.shutdown {
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (q, timeout) =
                    shared.arrivals.wait_timeout(queue, remaining).expect("queue lock");
                queue = q;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = queue.pending.len().min(config.max_batch);
            queue.pending.drain(..take).collect::<Vec<Request>>()
        };
        if batch.is_empty() {
            continue;
        }

        // Move the tensors out instead of cloning them onto the hot path;
        // only the enqueue time and reply channel outlive the execution.
        let (inputs, meta): (Vec<Tensor>, Vec<_>) =
            batch.into_iter().map(|r| (r.input, (r.enqueued, r.reply))).unzip();
        let frames = inputs.len();
        // Observed input activity density: under rate coding, a pixel's
        // value is its per-timestep spike probability, so the mean value
        // is the expected fraction of input axons spiking per step.
        let density = inputs
            .iter()
            .map(|t| t.data().iter().sum::<f64>() / t.len().max(1) as f64)
            .sum::<f64>()
            / frames as f64;
        let engine = pick_engine(
            config.engine,
            frames,
            engines.estimate(EngineKind::Sequential, frames),
            engines.estimate(EngineKind::Batched, frames),
            &mut engines.probes,
        );

        // The uniform plan → execute → drain lifecycle over the chosen
        // replica; both engines answer per-frame verdicts through it.
        let slot = engines.slot_mut(engine);
        let exec_start = Instant::now();
        let results: Vec<Result<SnnOutput>> = match slot.engine.plan(frames) {
            Ok(()) => {
                let results = slot.engine.execute(&inputs, config.timesteps);
                slot.engine.drain();
                results
            }
            Err(e) => (0..frames).map(|_| Err(e.clone())).collect(),
        };
        let busy = exec_start.elapsed();
        let answered = Instant::now();
        // Per-unit marginal cost: frames for the sequential engine,
        // occupied lanes for the batched one — the same number, recorded
        // into this occupancy's bucket.
        slot.record(frames, busy.as_nanos() as f64 / frames as f64);

        let mut stats = shared.stats.lock().expect("stats lock");
        stats.batches += 1;
        stats.busy_time += busy;
        if frames == config.max_batch {
            stats.full_batches += 1;
        }
        stats.record_occupancy(frames, config.max_batch);
        match engine {
            EngineKind::Sequential => {
                stats.sequential_batches += 1;
                stats.sequential_frames += frames as u64;
            }
            EngineKind::Batched => {
                stats.batched_batches += 1;
                stats.batched_frames += frames as u64;
            }
        }
        stats.density_weighted_sum += density * frames as f64;
        for ((enqueued, reply_tx), result) in meta.into_iter().zip(results) {
            match result {
                Ok(output) => {
                    let latency = answered.duration_since(enqueued);
                    stats.completed += 1;
                    stats.total_latency += latency;
                    stats.max_latency = stats.max_latency.max(latency);
                    stats.record_latency(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                    let reply = InferenceReply {
                        predicted: output.predicted_class(),
                        output,
                        latency,
                        worker: id,
                        batch_size: frames,
                        engine,
                    };
                    let _ = reply_tx.send(Ok(reply));
                }
                Err(e) => {
                    stats.failed += 1;
                    let _ = reply_tx.send(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shenjing_core::{ArchSpec, W5};
    use shenjing_sim::CycleSim;
    use shenjing_snn::{SnnLayer, SnnNetwork, SpikingDense};

    fn model() -> CompiledModel {
        let weights: Vec<W5> = (0..12 * 3).map(|i| W5::saturating(i % 11 - 5)).collect();
        let snn = SnnNetwork::new(vec![SnnLayer::Dense(
            SpikingDense::new(weights, 12, 3, 4, 1.0).unwrap(),
        )])
        .unwrap();
        CompiledModel::compile(&ArchSpec::tiny(), &snn).unwrap()
    }

    fn frame(seed: usize) -> Tensor {
        Tensor::from_vec(vec![12], (0..12).map(|i| ((i + seed) % 4) as f64 / 3.0).collect())
            .unwrap()
    }

    #[test]
    fn serves_requests_and_matches_single_frame_sim() {
        let model = model();
        let mut reference: CycleSim = model.instantiate().unwrap();
        let runtime = Runtime::start(
            model,
            RuntimeConfig { workers: 2, max_batch: 4, timesteps: 9, ..Default::default() },
        )
        .unwrap();
        let inputs: Vec<Tensor> = (0..10).map(frame).collect();
        let replies = runtime.infer_many(&inputs).unwrap();
        for (input, reply) in inputs.iter().zip(&replies) {
            let want = reference.run_frame(input, 9).unwrap();
            assert_eq!(reply.output, want, "serving path must stay bit-exact");
            assert_eq!(reply.predicted, want.predicted_class());
            assert!(reply.batch_size >= 1 && reply.batch_size <= 4);
        }
        let stats = runtime.shutdown().unwrap();
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.failed, 0);
        assert!(stats.batches >= 3, "4-lane workers need ≥3 batches for 10 frames");
        assert_eq!(
            stats.sequential_batches + stats.batched_batches,
            stats.batches,
            "every batch ran on exactly one engine"
        );
        assert_eq!(stats.sequential_frames + stats.batched_frames, 10);
        assert!(stats.mean_batch_occupancy >= 1.0);
        assert!(stats.frames_per_sec > 0.0);
        assert!(stats.p50_latency <= stats.p95_latency);
        assert!(stats.p95_latency <= stats.p99_latency);
        assert!(stats.p99_latency <= stats.max_latency);
        assert!(stats.mean_input_density > 0.0 && stats.mean_input_density < 1.0);
    }

    #[test]
    fn batching_policy_groups_concurrent_requests() {
        // One worker, generous wait: requests submitted together should
        // share batches rather than run one by one.
        let model = model();
        let runtime = Runtime::start(
            model,
            RuntimeConfig {
                workers: 1,
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                timesteps: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let pending: Vec<PendingReply> =
            (0..8).map(|k| runtime.submit(frame(k)).unwrap()).collect();
        let replies: Vec<InferenceReply> = pending.into_iter().map(|p| p.wait().unwrap()).collect();
        assert!(
            replies.iter().any(|r| r.batch_size > 1),
            "co-submitted requests should share a batch"
        );
        let stats = runtime.shutdown().unwrap();
        assert!(stats.batches < 8, "expected batching, got {} batches", stats.batches);
    }

    #[test]
    fn forced_engines_are_obeyed_and_bit_exact() {
        let model = model();
        let mut reference: CycleSim = model.instantiate().unwrap();
        for (policy, engine) in [
            (EnginePolicy::ForceSequential, EngineKind::Sequential),
            (EnginePolicy::ForceBatched, EngineKind::Batched),
        ] {
            let runtime = Runtime::start(
                model.clone(),
                RuntimeConfig {
                    workers: 1,
                    max_batch: 4,
                    timesteps: 7,
                    engine: policy,
                    ..Default::default()
                },
            )
            .unwrap();
            let inputs: Vec<Tensor> = (0..6).map(frame).collect();
            let replies = runtime.infer_many(&inputs).unwrap();
            for (input, reply) in inputs.iter().zip(&replies) {
                assert_eq!(reply.engine, engine, "policy {policy:?} must pin the engine");
                let want = reference.run_frame(input, 7).unwrap();
                assert_eq!(reply.output, want, "both engines serve bit-exact outputs");
            }
            let stats = runtime.shutdown().unwrap();
            match engine {
                EngineKind::Sequential => {
                    assert_eq!(stats.sequential_frames, 6);
                    assert_eq!(stats.batched_frames, 0);
                }
                EngineKind::Batched => {
                    assert_eq!(stats.batched_frames, 6);
                    assert_eq!(stats.sequential_frames, 0);
                }
            }
            assert_eq!(
                stats
                    .occupancy_histogram
                    .iter()
                    .enumerate()
                    .map(|(n, c)| n as u64 * c)
                    .sum::<u64>(),
                6,
                "the occupancy histogram accounts for every frame"
            );
        }
    }

    #[test]
    fn auto_dispatch_runs_single_frame_batches_sequentially() {
        let model = model();
        let runtime = Runtime::start(
            model,
            RuntimeConfig { workers: 1, max_batch: 8, timesteps: 5, ..Default::default() },
        )
        .unwrap();
        // Strictly serialized submissions: every gathered batch holds one
        // frame, so auto dispatch must choose the sequential engine.
        for k in 0..4 {
            let reply = runtime.infer(frame(k)).unwrap();
            assert_eq!(reply.engine, EngineKind::Sequential);
            assert_eq!(reply.batch_size, 1);
        }
        let stats = runtime.shutdown().unwrap();
        assert_eq!(stats.sequential_frames, 4);
        assert_eq!(stats.batched_frames, 0);
        assert_eq!(stats.occupancy_histogram[1], 4, "four single-frame batches");
    }

    #[test]
    fn pick_engine_marginal_cost_crossover() {
        fn ps() -> ProbeState {
            ProbeState::default()
        }
        // Forced policies ignore measurements.
        assert_eq!(
            pick_engine(EnginePolicy::ForceSequential, 16, None, None, &mut ps()),
            EngineKind::Sequential
        );
        assert_eq!(
            pick_engine(EnginePolicy::ForceBatched, 1, None, None, &mut ps()),
            EngineKind::Batched
        );
        // Auto: batches of one are always sequential; unmeasured larger
        // batches go batched to learn its cost.
        assert_eq!(
            pick_engine(EnginePolicy::Auto, 1, None, None, &mut ps()),
            EngineKind::Sequential
        );
        assert_eq!(pick_engine(EnginePolicy::Auto, 2, None, None, &mut ps()), EngineKind::Batched);
        // Auto with measurements is a per-unit marginal-cost comparison:
        // occupancy-bound passes make an n-frame batch cost ≈ n × unit on
        // either engine, so a cheaper batched lane wins at every n ≥ 2 —
        // the crossover collapsed to n = 1.
        let (seq, lane) = (Some(10_000.0), Some(6_000.0));
        assert_eq!(
            pick_engine(EnginePolicy::Auto, 1, seq, lane, &mut ps()),
            EngineKind::Sequential
        );
        for frames in [2, 4, 16] {
            assert_eq!(
                pick_engine(EnginePolicy::Auto, frames, seq, lane, &mut ps()),
                EngineKind::Batched,
                "a cheaper per-lane cost wins every {frames}-frame batch"
            );
        }
        // And a costlier batched lane (e.g. very sparse frames, where the
        // control-word walk dominates a 2-lane pass) loses them.
        let (seq, lane) = (Some(10_000.0), Some(14_000.0));
        for frames in [2, 4, 16] {
            assert_eq!(
                pick_engine(EnginePolicy::Auto, frames, seq, lane, &mut ps()),
                EngineKind::Sequential
            );
        }
    }

    #[test]
    fn unit_cost_buckets_are_per_occupancy() {
        // The batched engine's per-lane unit falls as batches fill (its
        // fixed control-word walk amortizes), so a full-batch measurement
        // must not price a small batch once the small batch has its own:
        // each occupancy owns a bucket, with nearest-bucket fallback
        // before any measurement exists there.
        let model = model();
        let mut slot = EngineSlot::new(Box::new(model.instantiate_batched(16).unwrap()), 16);
        assert_eq!(slot.estimate(4), None, "no measurements yet");
        slot.record(16, 2_000.0); // cheap per-lane unit at full occupancy
        assert_eq!(slot.estimate(16), Some(2_000.0));
        assert_eq!(slot.estimate(2), Some(2_000.0), "nearest bucket seeds unmeasured occupancies");
        slot.record(2, 8_000.0); // a 2-frame pass barely amortizes the walk
        assert_eq!(slot.estimate(2), Some(8_000.0), "own bucket wins once measured");
        assert_eq!(slot.estimate(16), Some(2_000.0), "full-batch bucket is unaffected");
        assert_eq!(slot.estimate(3), Some(8_000.0), "fallback picks the closest measurement");
        // A dispatch decision at n=2 now sees the honest 2-frame unit: a
        // 5 µs sequential frame beats the 8 µs batched lane there while
        // full batches keep preferring the 2 µs lane.
        let mut probes = ProbeState::default();
        assert_eq!(
            pick_engine(EnginePolicy::Auto, 2, Some(5_000.0), slot.estimate(2), &mut probes),
            EngineKind::Sequential
        );
        assert_eq!(
            pick_engine(EnginePolicy::Auto, 16, Some(5_000.0), slot.estimate(16), &mut probes),
            EngineKind::Batched
        );
    }

    #[test]
    fn auto_dispatch_periodically_probes_the_unpreferred_engine() {
        // A stale or never-seeded EMA must not lock the dispatch onto one
        // engine: every ENGINE_PROBE_INTERVAL multi-frame batches the
        // crossover prefers one engine for, one is diverted to the other
        // so its measurement keeps tracking the traffic.
        let (seq, lane) = (Some(1_000.0), Some(1_000_000.0));
        let mut probes = ProbeState::default();
        let mut diverted = 0u32;
        for _ in 0..2 * (ENGINE_PROBE_INTERVAL + 1) {
            if pick_engine(EnginePolicy::Auto, 4, seq, lane, &mut probes) == EngineKind::Batched {
                diverted += 1;
            }
        }
        assert_eq!(diverted, 2, "one batched probe per interval");

        // The mirror direction, including the bootstrap case where the
        // sequential EMA was never seeded (sustained multi-frame traffic
        // has no n=1 batches to learn it from).
        let mut probes = ProbeState::default();
        let mut diverted = 0u32;
        for _ in 0..2 * (ENGINE_PROBE_INTERVAL + 1) {
            if pick_engine(EnginePolicy::Auto, 4, None, Some(1_000.0), &mut probes)
                == EngineKind::Sequential
            {
                diverted += 1;
            }
        }
        assert_eq!(diverted, 2, "one sequential probe per interval seeds/refreshes its EMA");

        // Single-frame batches never probe (sequential is never slower).
        let mut probes = ProbeState { sequential: 0, batched: 0 };
        assert_eq!(
            pick_engine(EnginePolicy::Auto, 1, seq, lane, &mut probes),
            EngineKind::Sequential
        );
        assert_eq!(
            (probes.sequential, probes.batched),
            (0, 0),
            "the n=1 shortcut leaves the probe state alone"
        );
    }

    #[test]
    fn input_validation_and_shutdown_behavior() {
        let model = model();
        let runtime = Runtime::start(model, RuntimeConfig::default()).unwrap();
        assert!(runtime.submit(Tensor::zeros(vec![3])).is_err(), "wrong shape rejected");
        let stats = runtime.shutdown().unwrap();
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn config_validation() {
        let model = model();
        for config in [
            RuntimeConfig { workers: 0, ..Default::default() },
            RuntimeConfig { max_batch: 0, ..Default::default() },
            RuntimeConfig { timesteps: 0, ..Default::default() },
        ] {
            assert!(Runtime::start(model.clone(), config).is_err());
        }
    }

    #[test]
    fn drop_without_shutdown_terminates_workers() {
        let model = model();
        let runtime = Runtime::start(model, RuntimeConfig::default()).unwrap();
        let reply = runtime.infer(frame(0)).unwrap();
        assert!(!reply.output.spike_counts.is_empty());
        drop(runtime); // must not hang
    }
}
