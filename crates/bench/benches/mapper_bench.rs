//! Mapping-toolchain throughput: the paper's "Mapping time" row of
//! Table IV (their largest network took 12 s on a laptop CPU).

use criterion::{criterion_group, criterion_main, Criterion};
use shenjing::prelude::*;
use shenjing::snn::snn_from_specs;

fn bench_mapper(c: &mut Criterion) {
    let arch = ArchSpec::paper();
    let mlp = snn_from_specs(&NetworkKind::MnistMlp.specs(), (28, 28, 1), 7).unwrap();
    let cnn = snn_from_specs(&NetworkKind::MnistCnn.specs(), (28, 28, 1), 7).unwrap();

    c.bench_function("map_full_mnist_mlp", |b| {
        b.iter(|| Mapper::new(arch.clone()).map(&mlp).unwrap())
    });

    c.bench_function("map_logical_mnist_cnn", |b| b.iter(|| map_logical(&arch, &cnn).unwrap()));

    let cnn_logical = map_logical(&arch, &cnn).unwrap();
    c.bench_function("place_greedy_mnist_cnn", |b| {
        b.iter(|| place(&arch, &cnn_logical, PlacementStrategy::Greedy).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mapper
}
criterion_main!(benches);
