//! Table V: comparison with existing SNN architectures for MNIST MLP.
//!
//! These are the literature numbers the paper tabulates (its own
//! "best-effort comparison"); our measured row is appended by the
//! `repro_table5` harness from the Table IV pipeline.

use serde::{Deserialize, Serialize};

/// One row of Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Architecture name.
    pub architecture: String,
    /// Process node in nm.
    pub tech_nm: u32,
    /// MNIST accuracy (fraction).
    pub accuracy: f64,
    /// Throughput in frames/second, when reported.
    pub fps: Option<f64>,
    /// Supply voltage description.
    pub voltage: String,
    /// Power in mW, when reported.
    pub power_mw: Option<f64>,
    /// Energy per frame in µJ, when reported.
    pub uj_per_frame: Option<f64>,
}

/// The literature rows of Table V (excluding "This work", which is
/// measured by the harness).
pub fn paper_rows() -> Vec<ComparisonRow> {
    vec![
        ComparisonRow {
            architecture: "SNNwt".into(),
            tech_nm: 65,
            accuracy: 0.9182,
            fps: None,
            voltage: "1.2V".into(),
            power_mw: None,
            uj_per_frame: Some(214.7),
        },
        ComparisonRow {
            architecture: "SpiNNaker".into(),
            tech_nm: 130,
            accuracy: 0.9501,
            fps: Some(77.0),
            voltage: "1.8V/1.2V".into(),
            power_mw: Some(300.0),
            uj_per_frame: Some(3896.0),
        },
        ComparisonRow {
            architecture: "Tianji".into(),
            tech_nm: 120,
            accuracy: 0.9659,
            fps: None,
            voltage: "1.2V".into(),
            power_mw: Some(120.0), // dynamic power only, per the paper's footnote
            uj_per_frame: None,
        },
        ComparisonRow {
            architecture: "TrueNorth (low power)".into(),
            tech_nm: 28,
            accuracy: 0.9270,
            fps: Some(1000.0),
            voltage: "0.775V".into(),
            power_mw: Some(0.268),
            uj_per_frame: Some(0.268),
        },
        ComparisonRow {
            architecture: "TrueNorth (high accuracy)".into(),
            tech_nm: 28,
            accuracy: 0.9942,
            fps: Some(1000.0),
            voltage: "0.775V".into(),
            power_mw: Some(108.0),
            uj_per_frame: Some(108.0),
        },
    ]
}

/// The paper's own "This work" row, for reference alongside our measured
/// reproduction.
pub fn paper_this_work() -> ComparisonRow {
    ComparisonRow {
        architecture: "Shenjing (paper)".into(),
        tech_nm: 28,
        accuracy: 0.9611,
        fps: Some(40.0),
        voltage: "1.05V/0.85V".into(),
        power_mw: Some(1.26),
        uj_per_frame: Some(38.0),
    }
}

impl std::fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<26} {:>4}nm  acc {:>6.2}%  fps {:>6}  {:<11} power {:>9}  {:>10}",
            self.architecture,
            self.tech_nm,
            self.accuracy * 100.0,
            self.fps.map(|v| format!("{v:.0}")).unwrap_or_else(|| "N.A.".into()),
            self.voltage,
            self.power_mw.map(|v| format!("{v:.3} mW")).unwrap_or_else(|| "N.A.".into()),
            self.uj_per_frame.map(|v| format!("{v:.2} µJ/f")).unwrap_or_else(|| "N.A.".into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_literature_rows() {
        let rows = paper_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|r| r.architecture.contains("SpiNNaker")));
    }

    #[test]
    fn paper_key_claims_hold_in_the_data() {
        let rows = paper_rows();
        let shenjing = paper_this_work();
        // "energy an order of magnitude lower than SNNwt":
        let snnwt = rows.iter().find(|r| r.architecture == "SNNwt").unwrap();
        assert!(snnwt.uj_per_frame.unwrap() / shenjing.uj_per_frame.unwrap() > 5.0);
        // "TrueNorth's power increases by ~400x for the accuracy boost":
        let tn_low = rows.iter().find(|r| r.architecture.contains("low power")).unwrap();
        let tn_high = rows.iter().find(|r| r.architecture.contains("high accuracy")).unwrap();
        let ratio = tn_high.power_mw.unwrap() / tn_low.power_mw.unwrap();
        assert!((ratio - 402.0).abs() / 402.0 < 0.01);
        // Shenjing beats both TrueNorth-low and SpiNNaker on accuracy.
        assert!(shenjing.accuracy > tn_low.accuracy);
    }

    #[test]
    fn display_renders() {
        for row in paper_rows() {
            let s = row.to_string();
            assert!(s.contains("nm"));
        }
        assert!(paper_this_work().to_string().contains("Shenjing"));
    }
}
