//! The MNIST-like synthetic digit dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shenjing_nn::Tensor;

use crate::split::LabelledImage;

/// 5×7 bitmap font for the ten digits: each entry is 7 rows of 5 bits,
/// MSB = leftmost column.
const GLYPHS: [[u8; 7]; 10] = [
    // 0
    [0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110],
    // 1
    [0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110],
    // 2
    [0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111],
    // 3
    [0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110],
    // 4
    [0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010],
    // 5
    [0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110],
    // 6
    [0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110],
    // 7
    [0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000],
    // 8
    [0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110],
    // 9
    [0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100],
];

/// Image side length (matches MNIST).
pub const SIDE: usize = 28;
/// Upscaling factor from the 5×7 glyph to the rendered stroke grid.
const SCALE: usize = 3;

/// Generator of MNIST-like digit images.
///
/// Each image renders one glyph at 3× scale (15×21 pixels) at a jittered
/// position, with per-pixel intensity variation, occasional stroke pixel
/// dropout and background noise — enough variability that classification
/// is non-trivial but an MLP reaches high accuracy, mirroring MNIST's
/// difficulty profile.
#[derive(Debug, Clone)]
pub struct SynthDigits {
    seed: u64,
}

impl SynthDigits {
    /// Creates a generator with a dataset seed.
    pub fn new(seed: u64) -> SynthDigits {
        SynthDigits { seed }
    }

    /// Generates `n` labelled images, cycling through the 10 classes.
    pub fn generate(&self, n: usize) -> Vec<LabelledImage> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..n)
            .map(|i| {
                let label = i % 10;
                (self.render(label, &mut rng), label)
            })
            .collect()
    }

    /// Renders one image of `digit` using randomness from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `digit >= 10`.
    pub fn render(&self, digit: usize, rng: &mut StdRng) -> Tensor {
        assert!(digit < 10, "digit class must be 0..10");
        let glyph = &GLYPHS[digit];
        let mut img = vec![0.0f64; SIDE * SIDE];

        // Background noise.
        for px in img.iter_mut() {
            if rng.gen_bool(0.02) {
                *px = rng.gen_range(0.05..0.25);
            }
        }

        // Jittered placement of the 15x21 rendered glyph.
        let gw = 5 * SCALE;
        let gh = 7 * SCALE;
        let max_x = SIDE - gw;
        let max_y = SIDE - gh;
        let ox = rng.gen_range(max_x / 2 - 3..=max_x / 2 + 3);
        let oy = rng.gen_range(max_y / 2 - 2..=max_y / 2 + 2);

        for (row, bits) in glyph.iter().enumerate() {
            for col in 0..5 {
                if bits & (1 << (4 - col)) == 0 {
                    continue;
                }
                for dy in 0..SCALE {
                    for dx in 0..SCALE {
                        // Small dropout makes strokes ragged.
                        if rng.gen_bool(0.06) {
                            continue;
                        }
                        let y = oy + row * SCALE + dy;
                        let x = ox + col * SCALE + dx;
                        img[y * SIDE + x] = rng.gen_range(0.7..1.0);
                    }
                }
            }
        }

        Tensor::from_vec(vec![SIDE, SIDE, 1], img).expect("shape matches buffer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = SynthDigits::new(1).generate(20);
        let b = SynthDigits::new(1).generate(20);
        assert_eq!(a.len(), b.len());
        for ((ia, la), (ib, lb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(ia.data(), ib.data());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthDigits::new(1).generate(1);
        let b = SynthDigits::new(2).generate(1);
        assert_ne!(a[0].0.data(), b[0].0.data());
    }

    #[test]
    fn labels_cycle_through_classes() {
        let ds = SynthDigits::new(0).generate(25);
        for (i, (_, label)) in ds.iter().enumerate() {
            assert_eq!(*label, i % 10);
        }
    }

    #[test]
    fn pixel_range_and_shape() {
        let ds = SynthDigits::new(3).generate(10);
        for (img, _) in &ds {
            assert_eq!(img.shape(), &[28, 28, 1]);
            assert!(img.data().iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn glyph_pixels_present() {
        // Every rendered digit must have a reasonable amount of ink.
        let ds = SynthDigits::new(4).generate(10);
        for (img, label) in &ds {
            let ink = img.data().iter().filter(|v| **v > 0.5).count();
            assert!(ink > 30, "digit {label} has only {ink} bright pixels");
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean images of different classes should differ substantially —
        // a sanity check that the generator carries class information.
        let ds = SynthDigits::new(5).generate(200);
        let mut means = vec![vec![0.0f64; SIDE * SIDE]; 10];
        let mut counts = [0usize; 10];
        for (img, label) in &ds {
            counts[*label] += 1;
            for (m, v) in means[*label].iter_mut().zip(img.data()) {
                *m += v;
            }
        }
        for (m, c) in means.iter_mut().zip(counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
        };
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert!(dist(&means[i], &means[j]) > 1.0, "classes {i} and {j} look identical");
            }
        }
    }
}
