//! Deterministic failure injection for fault-tolerance drills.
//!
//! Gated behind the default-off `chaos` feature, this module arms a
//! [`Runtime`](crate::Runtime) with scripted failures so the
//! supervision, retry, and quarantine machinery can be exercised — and
//! asserted on — without any real hardware fault:
//!
//! - **Replica panics** ([`ChaosConfig::with_panic_on_batches`] /
//!   [`with_panic_every`](ChaosConfig::with_panic_every)): the Nth
//!   batch execution panics inside the per-batch guard, exactly where a
//!   buggy replica would.
//! - **Batch errors** ([`ChaosConfig::with_error_on_batches`]): the Nth
//!   batch fails with a typed error before planning, feeding the
//!   consecutive-error quarantine streak.
//! - **Pass delay** ([`ChaosConfig::with_delay`]): every execution
//!   sleeps first, stretching latency tails for deadline/backoff tests.
//! - **Worker kills** ([`ChaosConfig::with_kill_worker_on_ticks`]): the
//!   Nth worker-loop tick panics *outside* the guard, killing the whole
//!   worker thread so the supervisor's respawn path runs.
//! - **Damaged weights** ([`compile_damaged`]): compiles a model whose
//!   mapping was corrupted through `sim::fault` injection — a silently
//!   wrong replica rather than a loud one.
//!
//! Batch and tick ordinals are counted runtime-wide (1-based) on shared
//! atomics, so with a single worker every schedule is deterministic.
//! Arming chaos also installs a process-wide panic hook filter that
//! swallows the injected panics' default stderr reports (they are
//! expected); every other panic still reports through the previously
//! installed hook.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;
use std::time::Duration;

use shenjing_core::{ArchSpec, Error, Result};
use shenjing_mapper::Mapper;
use shenjing_snn::SnnNetwork;

use crate::model::CompiledModel;

pub use shenjing_sim::fault::{inject, inject_mapping, Fault};

/// A scripted failure schedule, armed via
/// [`RuntimeConfigBuilder::chaos`](crate::RuntimeConfigBuilder::chaos).
///
/// Ordinals are 1-based counts of batch executions (for panics, errors
/// and delay) or worker-loop ticks (for kills), shared across all
/// workers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Batch-execution ordinals that panic inside the per-batch guard.
    pub panic_on_batches: Vec<u64>,
    /// Panic on every multiple of this batch ordinal (1 = every batch).
    pub panic_every: Option<u64>,
    /// Batch-execution ordinals that fail with a typed error instead of
    /// executing.
    pub error_on_batches: Vec<u64>,
    /// Sleep this long before every batch execution.
    pub delay: Option<Duration>,
    /// Worker-loop tick ordinals that kill the whole worker thread.
    pub kill_worker_on_ticks: Vec<u64>,
}

impl ChaosConfig {
    /// Panics the listed batch executions (1-based ordinals).
    #[must_use]
    pub fn with_panic_on_batches(mut self, batches: impl Into<Vec<u64>>) -> ChaosConfig {
        self.panic_on_batches = batches.into();
        self
    }

    /// Panics every `every`th batch execution.
    #[must_use]
    pub fn with_panic_every(mut self, every: u64) -> ChaosConfig {
        self.panic_every = Some(every);
        self
    }

    /// Fails the listed batch executions with a typed error.
    #[must_use]
    pub fn with_error_on_batches(mut self, batches: impl Into<Vec<u64>>) -> ChaosConfig {
        self.error_on_batches = batches.into();
        self
    }

    /// Sleeps before every batch execution.
    #[must_use]
    pub fn with_delay(mut self, delay: Duration) -> ChaosConfig {
        self.delay = Some(delay);
        self
    }

    /// Kills the worker thread on the listed worker-loop ticks.
    #[must_use]
    pub fn with_kill_worker_on_ticks(mut self, ticks: impl Into<Vec<u64>>) -> ChaosConfig {
        self.kill_worker_on_ticks = ticks.into();
        self
    }
}

/// Swallows the default stderr report for *injected* panics only (their
/// payloads start with `"chaos: "`); everything else still reaches the
/// hook that was installed before chaos was first armed.
fn install_quiet_panic_hook() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .is_some_and(|m| m.starts_with("chaos: "));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// The armed, counting form of a [`ChaosConfig`], shared by every
/// worker of one runtime.
#[derive(Debug)]
pub(crate) struct ChaosInjector {
    config: ChaosConfig,
    batches: AtomicU64,
    ticks: AtomicU64,
}

impl ChaosInjector {
    pub(crate) fn new(config: ChaosConfig) -> ChaosInjector {
        install_quiet_panic_hook();
        ChaosInjector { config, batches: AtomicU64::new(0), ticks: AtomicU64::new(0) }
    }

    /// Called inside the per-batch panic guard, before planning. May
    /// sleep, panic, or fail the batch with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidControl`] on scripted error ordinals.
    pub(crate) fn on_execute(&self) -> Result<()> {
        let n = self.batches.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(delay) = self.config.delay {
            std::thread::sleep(delay);
        }
        let scripted_panic = self.config.panic_on_batches.contains(&n)
            || self.config.panic_every.is_some_and(|every| every > 0 && n.is_multiple_of(every));
        if scripted_panic {
            panic!("chaos: injected panic at batch {n}");
        }
        if self.config.error_on_batches.contains(&n) {
            return Err(Error::InvalidControl {
                component: "chaos".into(),
                reason: format!("injected replica fault at batch {n}"),
            });
        }
        Ok(())
    }

    /// Called at the top of every worker-loop iteration, outside every
    /// lock and guard; a scripted tick panic kills the worker thread.
    pub(crate) fn on_worker_tick(&self) {
        let n = self.ticks.fetch_add(1, Ordering::SeqCst) + 1;
        if self.config.kill_worker_on_ticks.contains(&n) {
            panic!("chaos: injected worker kill at tick {n}");
        }
    }
}

/// Compiles `snn` for `arch` with `fault` injected into the mapped
/// program first: a model that loads and serves normally but computes
/// on damaged state — the silent-corruption counterpart to the loud
/// scripted failures above.
///
/// # Errors
///
/// Propagates mapping/decoding errors and
/// [`Error::InvalidConfig`] for an out-of-range fault target.
pub fn compile_damaged(arch: &ArchSpec, snn: &SnnNetwork, fault: Fault) -> Result<CompiledModel> {
    let mapping = Mapper::new(arch.clone()).map(snn)?;
    let damaged = inject_mapping(&mapping, fault)?;
    CompiledModel::from_mapping(arch, &damaged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_errors_and_panics_follow_the_batch_ordinals() {
        let injector = ChaosInjector::new(
            ChaosConfig::default().with_error_on_batches([2u64]).with_panic_on_batches([3u64]),
        );
        assert!(injector.on_execute().is_ok(), "batch 1 passes");
        assert!(injector.on_execute().is_err(), "batch 2 errors");
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = injector.on_execute();
        }));
        assert!(unwound.is_err(), "batch 3 panics");
        assert!(injector.on_execute().is_ok(), "batch 4 passes again");
    }

    #[test]
    fn periodic_panics_hit_every_multiple() {
        let injector = ChaosInjector::new(ChaosConfig::default().with_panic_every(2));
        for batch in 1u64..=4 {
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = injector.on_execute();
            }));
            assert_eq!(unwound.is_err(), batch.is_multiple_of(2), "batch {batch}");
        }
    }

    #[test]
    fn worker_kills_follow_the_tick_ordinals() {
        let injector = ChaosInjector::new(ChaosConfig::default().with_kill_worker_on_ticks([2u64]));
        injector.on_worker_tick();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.on_worker_tick();
        }));
        assert!(unwound.is_err(), "tick 2 kills");
        injector.on_worker_tick();
    }
}
