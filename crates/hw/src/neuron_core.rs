//! The neuron core: weight SRAM banks, axon buffer and accumulators
//! (Fig. 2a).
//!
//! A neuron core stores an `inputs × neurons` array of 5-bit synaptic
//! weights across [`ArchSpec::sram_banks`] SRAM banks (each bank serving a
//! contiguous slice of neurons), holds one spike bit per input axon, and on
//! an `ACC` operation produces the **local partial sum** of every enabled
//! neuron: the sum of the weights of all axons that spiked,
//! `Σ_j b_j(t) · ω_ji`. In hardware this sweep takes
//! [`ArchSpec::acc_cycles`] (131) cycles; here it is one call and the
//! schedule accounts for the latency.
//!
//! [`ArchSpec::sram_banks`]: shenjing_core::ArchSpec::sram_banks
//! [`ArchSpec::acc_cycles`]: shenjing_core::ArchSpec::acc_cycles

use shenjing_core::{ArchSpec, Error, LocalSum, Result, W5};

use crate::activity::ActiveSet;

/// Whether a running `ACC` sum over `inputs` axons can leave the 13-bit
/// local range at all. Not when the all-axons-spiking extreme still fits
/// (the paper's accumulator sizing; holds for every built-in arch) — the
/// shared fast-path gate of [`NeuronCore`] and
/// [`BatchNeuronCore`](crate::BatchNeuronCore).
pub(crate) fn acc_overflow_possible(inputs: u16) -> bool {
    let worst = i32::from(inputs);
    worst * W5::MAX.value() > LocalSum::MAX.value()
        || worst * W5::MIN.value() < LocalSum::MIN.value()
}

/// One tile's neuron core.
///
/// ```
/// use shenjing_core::{ArchSpec, W5};
/// use shenjing_hw::NeuronCore;
///
/// let arch = ArchSpec::tiny();
/// let mut core = NeuronCore::new(&arch);
/// core.write_weight(2, 7, W5::new(-5)?)?;
/// core.set_axon(2, true)?;
/// core.accumulate(0b1111)?;
/// assert_eq!(core.local_ps(7).value(), -5);
/// # Ok::<(), shenjing_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct NeuronCore {
    inputs: u16,
    neurons: u16,
    banks: u16,
    /// Row-major `[axon][neuron]` weight array.
    weights: Vec<W5>,
    /// The currently spiking axons (the shared maintained-list component
    /// the batched core uses too).
    active: ActiveSet,
    /// Wide per-neuron accumulation scratch for the sparse `ACC` sweep.
    scratch: Vec<i32>,
    /// Whether a running `ACC` sum can leave the 13-bit local range at all
    /// (only on custom architectures with more inputs than the paper's
    /// accumulator sizing covers); forces the per-step-checked sweep.
    checked_acc: bool,
    /// Latest local partial sum per neuron.
    local_ps: Vec<LocalSum>,
    /// Whether weights have been loaded at least once.
    loaded: bool,
}

impl NeuronCore {
    /// Creates a core with all-zero weights and idle axons.
    pub fn new(arch: &ArchSpec) -> NeuronCore {
        NeuronCore {
            inputs: arch.core_inputs,
            neurons: arch.core_neurons,
            banks: arch.sram_banks,
            weights: vec![W5::ZERO; arch.core_inputs as usize * arch.core_neurons as usize],
            active: ActiveSet::new(arch.core_inputs),
            scratch: vec![0; arch.core_neurons as usize],
            checked_acc: acc_overflow_possible(arch.core_inputs),
            local_ps: vec![LocalSum::ZERO; arch.core_neurons as usize],
            loaded: false,
        }
    }

    /// Number of input axons.
    pub fn inputs(&self) -> u16 {
        self.inputs
    }

    /// Number of neurons.
    pub fn neurons(&self) -> u16 {
        self.neurons
    }

    /// Writes one synaptic weight (the unit step of `LD_WT`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] when `axon` or `neuron` exceed the
    /// core dimensions.
    pub fn write_weight(&mut self, axon: u16, neuron: u16, w: W5) -> Result<()> {
        let idx = self.weight_index(axon, neuron)?;
        self.weights[idx] = w;
        self.loaded = true;
        Ok(())
    }

    /// Loads a full `inputs × neurons` weight block (row-major by axon).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `block` has the wrong length.
    pub fn load_weights(&mut self, block: &[W5]) -> Result<()> {
        if block.len() != self.weights.len() {
            return Err(Error::shape_mismatch(
                format!("{} weights", self.weights.len()),
                format!("{} weights", block.len()),
            ));
        }
        self.weights.copy_from_slice(block);
        self.loaded = true;
        Ok(())
    }

    /// Loads a *prefix* of the axon-major weight array and zero-fills the
    /// rest — the trimmed-block loader the schedule optimizer uses after
    /// dropping trailing all-zero axon rows (zero rows contribute nothing
    /// to `ACC`, so the sums are unchanged bit for bit).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `rows` is not a whole number
    /// of axon rows or holds more rows than the core has axons.
    pub fn load_weight_rows(&mut self, rows: &[W5]) -> Result<()> {
        if !rows.len().is_multiple_of(self.neurons as usize) || rows.len() > self.weights.len() {
            return Err(Error::shape_mismatch(
                format!("at most {} weights in {}-neuron rows", self.weights.len(), self.neurons),
                format!("{} weights", rows.len()),
            ));
        }
        self.weights[..rows.len()].copy_from_slice(rows);
        self.weights[rows.len()..].fill(W5::ZERO);
        self.loaded = true;
        Ok(())
    }

    /// Reads one synaptic weight.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] when `axon` or `neuron` exceed the
    /// core dimensions.
    pub fn weight(&self, axon: u16, neuron: u16) -> Result<W5> {
        Ok(self.weights[self.weight_index(axon, neuron)?])
    }

    /// Sets or clears one axon's spike bit for the current timestep.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] when `axon` exceeds the core's inputs.
    pub fn set_axon(&mut self, axon: u16, spiking: bool) -> Result<()> {
        if axon >= self.inputs {
            return Err(Error::out_of_bounds(format!(
                "axon {axon} of a {}-input core",
                self.inputs
            )));
        }
        if spiking {
            self.active.insert(axon);
        } else {
            self.active.remove(axon);
        }
        Ok(())
    }

    /// Reads one axon's spike bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] when `axon` exceeds the core's inputs.
    pub fn axon(&self, axon: u16) -> Result<bool> {
        if axon >= self.inputs {
            return Err(Error::out_of_bounds(format!(
                "axon {axon} of a {}-input core",
                self.inputs
            )));
        }
        Ok(self.active.contains(axon))
    }

    /// Clears every axon (start of a new timestep). Costs `O(active)`, not
    /// `O(inputs)`.
    pub fn clear_axons(&mut self) {
        self.active.clear();
    }

    /// Number of axons currently spiking — the paper's switching-activity
    /// statistic ("average number of spiking axons per core in each time
    /// step") that drives the power model. A maintained counter: `O(1)`,
    /// safe to sample per core per timestep.
    pub fn active_axon_count(&self) -> usize {
        self.active.len()
    }

    /// Executes `ACC`: recomputes the local partial sums of every neuron in
    /// the enabled `banks` (bit `i` enables bank `i`) from the current axon
    /// buffer. Neurons in disabled banks keep their previous sums.
    ///
    /// This is the sparse-activity fast path: it sweeps axon-major over the
    /// maintained active-axon list, accumulating each active weight row into
    /// a wide `i32` scratch and clamp-checking into [`LocalSum`] once per
    /// neuron — `O(active × neurons)` instead of the reference
    /// `O(inputs × neurons)`.
    ///
    /// **Fallback condition:** the single clamp check is only sound when no
    /// *running* sum can leave the 13-bit local range mid-sweep, i.e. when
    /// `core_inputs × |W5::MAX or MIN| ≤ LocalSum::MAX/MIN` (the paper sizes
    /// the accumulator exactly that way, so every built-in architecture
    /// qualifies). For oversized custom architectures the core falls back to
    /// [`accumulate_reference`](NeuronCore::accumulate_reference), whose
    /// per-step checks error on precisely the addition where the hardware
    /// accumulator would saturate — mirroring `BatchNeuronCore::accumulate`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SumOverflow`] if any neuron's sum leaves the 13-bit
    /// local range (the hardware accumulator width), and
    /// [`Error::InvalidControl`] if `banks` enables a bank the core does
    /// not have.
    pub fn accumulate(&mut self, banks: u8) -> Result<()> {
        if self.checked_acc {
            return self.accumulate_reference(banks);
        }
        self.check_banks(banks)?;
        let neurons = self.neurons as usize;
        let per_bank = (self.neurons / self.banks) as usize;
        let n_banks = self.banks as usize;
        let enabled = |bank: usize| banks & (1 << bank) != 0;
        let NeuronCore { weights, active, scratch, local_ps, .. } = self;

        for bank in (0..n_banks).filter(|&k| enabled(k)) {
            scratch[bank * per_bank..(bank + 1) * per_bank].fill(0);
        }
        for a in active.iter() {
            let row = &weights[a as usize * neurons..(a as usize + 1) * neurons];
            for bank in (0..n_banks).filter(|&k| enabled(k)) {
                for n in bank * per_bank..(bank + 1) * per_bank {
                    scratch[n] += row[n].value();
                }
            }
        }
        for bank in (0..n_banks).filter(|&k| enabled(k)) {
            for n in bank * per_bank..(bank + 1) * per_bank {
                // Cannot fail here (see the fallback condition above); the
                // clamp check keeps the accumulator width contract explicit.
                local_ps[n] = LocalSum::new(scratch[n])?;
            }
        }
        Ok(())
    }

    /// The retained reference implementation of `ACC`: a dense
    /// `O(inputs × neurons)` sweep in bank → neuron → axon order with a
    /// range check after every addition, exactly as the seed simulator
    /// executed it. [`accumulate`](NeuronCore::accumulate) must stay
    /// bit-identical to this — outputs *and* errors — which the sequential
    /// equivalence proptests assert; it also serves as the fallback when
    /// the fast path's no-mid-sweep-overflow precondition does not hold.
    ///
    /// # Errors
    ///
    /// Same contract as [`accumulate`](NeuronCore::accumulate).
    pub fn accumulate_reference(&mut self, banks: u8) -> Result<()> {
        self.check_banks(banks)?;
        let per_bank = self.neurons / self.banks;
        for bank in 0..self.banks {
            if banks & (1 << bank) == 0 {
                continue;
            }
            let lo = (bank * per_bank) as usize;
            let hi = lo + per_bank as usize;
            for n in lo..hi {
                let mut sum = LocalSum::ZERO;
                for a in 0..self.inputs {
                    if self.active.contains(a) {
                        sum =
                            sum.add_weight(self.weights[a as usize * self.neurons as usize + n])?;
                    }
                }
                self.local_ps[n] = sum;
            }
        }
        Ok(())
    }

    /// The local partial sum of `neuron` produced by the latest `ACC`.
    ///
    /// # Panics
    ///
    /// Panics when `neuron` exceeds the core dimensions (an internal
    /// schedule bug, not a runtime condition).
    pub fn local_ps(&self, neuron: u16) -> LocalSum {
        self.local_ps[neuron as usize]
    }

    /// All local partial sums, indexed by neuron.
    pub fn local_ps_all(&self) -> &[LocalSum] {
        &self.local_ps
    }

    /// Whether any weights have been loaded.
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    fn weight_index(&self, axon: u16, neuron: u16) -> Result<usize> {
        if axon >= self.inputs || neuron >= self.neurons {
            return Err(Error::out_of_bounds(format!(
                "synapse ({axon},{neuron}) of a {}x{} core",
                self.inputs, self.neurons
            )));
        }
        Ok(axon as usize * self.neurons as usize + neuron as usize)
    }

    fn check_banks(&self, banks: u8) -> Result<()> {
        let valid_mask = (1u16 << self.banks) - 1;
        if banks == 0 || u16::from(banks) & !valid_mask != 0 {
            return Err(Error::InvalidControl {
                component: "neuron_core".into(),
                reason: format!("bank mask {banks:#06b} invalid for a {}-bank core", self.banks),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_core() -> NeuronCore {
        NeuronCore::new(&ArchSpec::tiny())
    }

    #[test]
    fn fresh_core_is_zeroed() {
        let core = tiny_core();
        assert!(!core.is_loaded());
        assert_eq!(core.active_axon_count(), 0);
        assert!(core.local_ps_all().iter().all(|s| s.value() == 0));
        assert_eq!(core.weight(0, 0).unwrap(), W5::ZERO);
    }

    #[test]
    fn weighted_sum_of_spiking_axons_only() {
        let mut core = tiny_core();
        core.write_weight(0, 0, W5::new(3).unwrap()).unwrap();
        core.write_weight(1, 0, W5::new(5).unwrap()).unwrap();
        core.write_weight(2, 0, W5::new(-7).unwrap()).unwrap();
        core.set_axon(0, true).unwrap();
        core.set_axon(2, true).unwrap();
        // axon 1 does not spike: its weight must not contribute.
        core.accumulate(0b1111).unwrap();
        assert_eq!(core.local_ps(0).value(), 3 - 7);
    }

    #[test]
    fn bank_masking_updates_only_enabled_neurons() {
        let arch = ArchSpec::tiny(); // 16 neurons, 4 banks of 4
        let mut core = NeuronCore::new(&arch);
        for n in 0..16 {
            core.write_weight(0, n, W5::new(1).unwrap()).unwrap();
        }
        core.set_axon(0, true).unwrap();
        core.accumulate(0b0001).unwrap(); // only bank 0: neurons 0..4
        for n in 0..4u16 {
            assert_eq!(core.local_ps(n).value(), 1, "neuron {n}");
        }
        for n in 4..16u16 {
            assert_eq!(core.local_ps(n).value(), 0, "neuron {n}");
        }
        core.accumulate(0b1110).unwrap(); // remaining banks
        for n in 0..16u16 {
            assert_eq!(core.local_ps(n).value(), 1, "neuron {n}");
        }
    }

    #[test]
    fn acc_overwrites_previous_sums() {
        let mut core = tiny_core();
        core.write_weight(0, 0, W5::new(4).unwrap()).unwrap();
        core.set_axon(0, true).unwrap();
        core.accumulate(0b1111).unwrap();
        assert_eq!(core.local_ps(0).value(), 4);
        core.clear_axons();
        core.accumulate(0b1111).unwrap();
        assert_eq!(core.local_ps(0).value(), 0, "ACC recomputes, not accumulates");
    }

    #[test]
    fn load_weights_block() {
        let arch = ArchSpec::tiny();
        let mut core = NeuronCore::new(&arch);
        let n = arch.core_inputs as usize * arch.core_neurons as usize;
        let block: Vec<W5> = (0..n).map(|i| W5::saturating((i % 7) as i32 - 3)).collect();
        core.load_weights(&block).unwrap();
        assert!(core.is_loaded());
        assert_eq!(core.weight(1, 0).unwrap(), block[arch.core_neurons as usize]);
        assert!(core.load_weights(&block[1..]).is_err());
    }

    #[test]
    fn bounds_checking() {
        let mut core = tiny_core();
        assert!(core.write_weight(16, 0, W5::ZERO).is_err());
        assert!(core.write_weight(0, 16, W5::ZERO).is_err());
        assert!(core.weight(99, 0).is_err());
        assert!(core.set_axon(16, true).is_err());
        assert!(core.axon(16).is_err());
    }

    #[test]
    fn invalid_bank_masks_rejected() {
        let mut core = tiny_core();
        assert!(core.accumulate(0).is_err());
        assert!(core.accumulate(0b10000).is_err());
        assert!(core.accumulate(0b1111).is_ok());
    }

    #[test]
    fn active_axon_count_tracks_sets() {
        let mut core = tiny_core();
        core.set_axon(0, true).unwrap();
        core.set_axon(5, true).unwrap();
        assert_eq!(core.active_axon_count(), 2);
        core.set_axon(5, false).unwrap();
        assert_eq!(core.active_axon_count(), 1);
        core.clear_axons();
        assert_eq!(core.active_axon_count(), 0);
    }

    #[test]
    fn active_list_survives_redundant_and_out_of_order_updates() {
        let mut core = tiny_core();
        core.set_axon(3, true).unwrap();
        core.set_axon(3, true).unwrap(); // redundant set
        core.set_axon(7, true).unwrap();
        core.set_axon(11, true).unwrap();
        assert_eq!(core.active_axon_count(), 3);
        core.set_axon(3, false).unwrap(); // middle removal (swap_remove path)
        core.set_axon(3, false).unwrap(); // redundant clear
        assert_eq!(core.active_axon_count(), 2);
        assert!(!core.axon(3).unwrap());
        assert!(core.axon(7).unwrap());
        assert!(core.axon(11).unwrap());
        core.clear_axons();
        assert_eq!(core.active_axon_count(), 0);
        assert!(!core.axon(7).unwrap());
    }

    #[test]
    fn sparse_and_reference_acc_agree() {
        let arch = ArchSpec::tiny();
        let mut fast = NeuronCore::new(&arch);
        for a in 0..arch.core_inputs {
            for n in 0..arch.core_neurons {
                fast.write_weight(a, n, W5::saturating(i32::from(a * 3 + n) % 31 - 15)).unwrap();
            }
        }
        for a in [0u16, 2, 5, 13] {
            fast.set_axon(a, true).unwrap();
        }
        let mut reference = fast.clone();
        fast.accumulate(0b0101).unwrap();
        reference.accumulate_reference(0b0101).unwrap();
        assert_eq!(fast.local_ps_all(), reference.local_ps_all());
    }

    #[test]
    fn oversized_arch_overflow_matches_reference() {
        // 512 inputs × weight 15 can leave the 13-bit range mid-sweep, so
        // `accumulate` must take the per-step-checked fallback and fail on
        // the same addition as the reference sweep.
        let arch = ArchSpec { core_inputs: 512, core_neurons: 16, ..ArchSpec::tiny() };
        let mut fast = NeuronCore::new(&arch);
        for a in 0..300u16 {
            fast.write_weight(a, 0, W5::MAX).unwrap();
            fast.set_axon(a, true).unwrap();
        }
        let mut reference = fast.clone();
        let fast_err = fast.accumulate(0b1111).unwrap_err();
        let reference_err = reference.accumulate_reference(0b1111).unwrap_err();
        assert_eq!(fast_err, reference_err);
    }

    #[test]
    fn overflow_during_acc_reported() {
        // 16 axons all spiking × weight 15 = 240 fits in 13 bits, so build a
        // custom arch with enough inputs to overflow: 16-bit... tiny arch
        // cannot overflow 13 bits (16*15=240). Use paper arch: 256 axons.
        let arch = ArchSpec::paper();
        let mut core = NeuronCore::new(&arch);
        for a in 0..256u16 {
            core.write_weight(a, 0, W5::MAX).unwrap();
            core.set_axon(a, true).unwrap();
        }
        // 256 * 15 = 3840 < 4096: still fits. The 13-bit local width indeed
        // covers a full worst-case core — matching the paper's sizing.
        core.accumulate(0b1111).unwrap();
        assert_eq!(core.local_ps(0).value(), 3840);
    }
}
