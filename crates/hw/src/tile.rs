//! One Shenjing tile: neuron core + PS routers + spike routers.

use shenjing_core::{ArchSpec, Result};

use crate::neuron_core::NeuronCore;
use crate::ops::AtomicOp;
use crate::ps_router::PsRouter;
use crate::spike_router::SpikeRouter;

/// A tile wires one [`NeuronCore`] to its per-neuron [`PsRouter`] and
/// [`SpikeRouter`] planes, and dispatches [`AtomicOp`]s to the right
/// component.
///
/// ```
/// use shenjing_core::{ArchSpec, W5};
/// use shenjing_hw::{Tile, AtomicOp, NeuronCoreOp};
///
/// let arch = ArchSpec::tiny();
/// let mut tile = Tile::new(&arch);
/// tile.core_mut().write_weight(0, 0, W5::new(2)?)?;
/// tile.core_mut().set_axon(0, true)?;
/// tile.exec(&AtomicOp::Core(NeuronCoreOp::Acc { banks: 0b1111 }))?;
/// assert_eq!(tile.core().local_ps(0).value(), 2);
/// # Ok::<(), shenjing_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tile {
    core: NeuronCore,
    ps: PsRouter,
    spike: SpikeRouter,
    /// Per-plane delivery remap: a spike ejected on plane `p` lands on
    /// axon `axon_map[p]`. This models the "Combine and MUX logic" between
    /// the spike routers and the SRAM axon lines in Fig. 2(a); the mapping
    /// toolchain configures it so producer neuron planes line up with
    /// consumer axon slots. Identity by default.
    axon_map: Vec<u16>,
    /// When set, `ACC` ops run the retained dense reference sweep instead
    /// of the sparse fast path (see [`Chip::set_reference_mode`]).
    ///
    /// [`Chip::set_reference_mode`]: crate::Chip::set_reference_mode
    reference: bool,
}

impl Tile {
    /// Creates a tile for the given architecture.
    pub fn new(arch: &ArchSpec) -> Tile {
        Tile {
            core: NeuronCore::new(arch),
            ps: PsRouter::new(arch.core_neurons),
            spike: SpikeRouter::new(arch.core_neurons),
            axon_map: (0..arch.core_neurons).collect(),
            reference: false,
        }
    }

    /// Switches this tile between the sparse `ACC` fast path and the
    /// retained dense reference implementation (both bit-identical; the
    /// equivalence proptests compare them).
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference = on;
    }

    /// Configures the delivery remap for one plane: spikes ejected on
    /// `plane` will set axon `axon`.
    ///
    /// # Errors
    ///
    /// Returns [`shenjing_core::Error::OutOfBounds`] when either index
    /// exceeds the core dimensions.
    pub fn set_axon_map(&mut self, plane: u16, axon: u16) -> Result<()> {
        if plane >= self.spike.planes() || axon >= self.core.inputs() {
            return Err(shenjing_core::Error::out_of_bounds(format!(
                "axon map entry plane {plane} -> axon {axon}"
            )));
        }
        self.axon_map[plane as usize] = axon;
        Ok(())
    }

    /// The neuron core.
    pub fn core(&self) -> &NeuronCore {
        &self.core
    }

    /// Mutable neuron core (weight loading, axon injection).
    pub fn core_mut(&mut self) -> &mut NeuronCore {
        &mut self.core
    }

    /// The PS router block.
    pub fn ps(&self) -> &PsRouter {
        &self.ps
    }

    /// Mutable PS router block (fabric transfer).
    pub fn ps_mut(&mut self) -> &mut PsRouter {
        &mut self.ps
    }

    /// The spike router block.
    pub fn spike(&self) -> &SpikeRouter {
        &self.spike
    }

    /// Mutable spike router block (fabric transfer, threshold config).
    pub fn spike_mut(&mut self) -> &mut SpikeRouter {
        &mut self.spike
    }

    /// Executes one atomic operation on this tile.
    ///
    /// # Errors
    ///
    /// Propagates the component's error: missing operands, register
    /// contention, fixed-point overflow or invalid bank masks.
    pub fn exec(&mut self, op: &AtomicOp) -> Result<()> {
        match op {
            AtomicOp::Core(core_op) => match core_op {
                crate::ops::NeuronCoreOp::LdWt { .. } => {
                    // Weight data comes from off-chip through the host
                    // interface (`core_mut().load_weights`); the scheduled
                    // LD_WT op models its timing and energy.
                    Ok(())
                }
                crate::ops::NeuronCoreOp::Acc { banks } => {
                    if self.reference {
                        self.core.accumulate_reference(*banks)
                    } else {
                        self.core.accumulate(*banks)
                    }
                }
            },
            AtomicOp::Ps(ps_op) => self.ps.exec(ps_op, self.core.local_ps_all()),
            AtomicOp::Spike(spike_op) => {
                self.spike.exec(spike_op, self.core.local_ps_all(), self.ps.eject_mut())
            }
        }
    }

    /// Moves spikes delivered by the spike router into the core's axon
    /// buffer through the configured [`axon map`](Tile::set_axon_map)
    /// (identity by default).
    ///
    /// # Errors
    ///
    /// Returns [`shenjing_core::Error::OutOfBounds`] when a delivered plane
    /// exceeds the core's axon count (a mapper bug).
    pub fn commit_deliveries(&mut self) -> Result<()> {
        for (plane, spiking) in self.spike.drain_deliveries() {
            if spiking {
                let axon = self.axon_map[plane as usize];
                self.core.set_axon(axon, true)?;
            }
        }
        Ok(())
    }

    /// Clears crossbar/network state, keeping potentials and weights
    /// (between timesteps of one frame).
    pub fn reset_network_state(&mut self) {
        self.ps.reset();
        self.spike.reset_network_state();
    }

    /// Full frame reset: network state, membrane potentials and axons.
    pub fn reset_frame(&mut self) {
        self.reset_network_state();
        self.spike.reset_potentials();
        self.core.clear_axons();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{NeuronCoreOp, PsDst, PsRouterOp, PsSendSource, SpikeRouterOp};
    use crate::plane::PlaneSet;
    use shenjing_core::{Direction, W5};

    fn tile() -> Tile {
        Tile::new(&ArchSpec::tiny())
    }

    #[test]
    fn acc_then_spike_from_local_ps() {
        let mut t = tile();
        t.core_mut().write_weight(0, 3, W5::new(9).unwrap()).unwrap();
        t.core_mut().set_axon(0, true).unwrap();
        t.spike_mut().set_threshold(3, 5).unwrap();
        t.exec(&AtomicOp::Core(NeuronCoreOp::Acc { banks: 0b1111 })).unwrap();
        t.exec(&AtomicOp::Spike(SpikeRouterOp::Spike {
            from_ps_router: false,
            planes: PlaneSet::all(),
        }))
        .unwrap();
        assert!(t.spike().spike_buffer(3));
    }

    #[test]
    fn full_weighted_sum_path_through_ps_eject() {
        // Simulate a two-core fold landing at this tile: incoming PS from
        // South, added to local PS, ejected to spiking logic, integrated.
        let mut t = tile();
        t.core_mut().write_weight(0, 0, W5::new(4).unwrap()).unwrap();
        t.core_mut().set_axon(0, true).unwrap();
        t.exec(&AtomicOp::Core(NeuronCoreOp::Acc { banks: 0b1111 })).unwrap();

        t.ps_mut().put_input(Direction::South, 0, shenjing_core::NocSum::new(6).unwrap()).unwrap();
        let plane0 = PlaneSet::from_indices([0u16]);
        t.exec(&AtomicOp::Ps(PsRouterOp::Sum {
            src: Direction::South,
            consec: false,
            planes: plane0.clone(),
        }))
        .unwrap();
        t.exec(&AtomicOp::Ps(PsRouterOp::Send {
            source: PsSendSource::SumBuf,
            dst: PsDst::SpikingLogic,
            planes: plane0.clone(),
        }))
        .unwrap();

        t.spike_mut().set_threshold(0, 9).unwrap();
        t.exec(&AtomicOp::Spike(SpikeRouterOp::Spike { from_ps_router: true, planes: plane0 }))
            .unwrap();
        // 4 (local) + 6 (incoming) = 10 > 9 → fire, residual 1.
        assert!(t.spike().spike_buffer(0));
        assert_eq!(t.spike().potential(0), 1);
    }

    #[test]
    fn ld_wt_is_a_timing_noop() {
        let mut t = tile();
        t.exec(&AtomicOp::Core(NeuronCoreOp::LdWt { banks: 0b1111 })).unwrap();
        assert!(!t.core().is_loaded(), "LD_WT op itself moves no host data");
    }

    #[test]
    fn deliveries_set_axons() {
        let mut t = tile();
        t.spike_mut().put_input(Direction::North, 2, true).unwrap();
        t.spike_mut().put_input(Direction::North, 3, false).unwrap();
        t.exec(&AtomicOp::Spike(SpikeRouterOp::Bypass {
            src: Direction::North,
            dst: None,
            deliver: true,
            planes: PlaneSet::from_indices([2u16, 3]),
        }))
        .unwrap();
        t.commit_deliveries().unwrap();
        assert!(t.core().axon(2).unwrap());
        assert!(!t.core().axon(3).unwrap(), "a 0-spike does not set the axon");
    }

    #[test]
    fn axon_map_remaps_deliveries() {
        let mut t = tile();
        t.set_axon_map(2, 9).unwrap();
        t.spike_mut().put_input(Direction::North, 2, true).unwrap();
        t.exec(&AtomicOp::Spike(SpikeRouterOp::Bypass {
            src: Direction::North,
            dst: None,
            deliver: true,
            planes: PlaneSet::from_indices([2u16]),
        }))
        .unwrap();
        t.commit_deliveries().unwrap();
        assert!(!t.core().axon(2).unwrap(), "plane 2 remapped away from axon 2");
        assert!(t.core().axon(9).unwrap());
    }

    #[test]
    fn axon_map_bounds_checked() {
        let mut t = tile();
        assert!(t.set_axon_map(99, 0).is_err());
        assert!(t.set_axon_map(0, 99).is_err());
    }

    #[test]
    fn frame_reset_clears_axons_and_potentials() {
        let mut t = tile();
        t.core_mut().set_axon(1, true).unwrap();
        t.spike_mut().integrate_value(0, 1);
        t.reset_frame();
        assert_eq!(t.core().active_axon_count(), 0);
        assert_eq!(t.spike().potential(0), 0);
    }

    #[test]
    fn network_reset_preserves_potentials() {
        let mut t = tile();
        t.spike_mut().set_threshold(0, 10).unwrap();
        t.spike_mut().integrate_value(0, 4);
        t.reset_network_state();
        assert_eq!(t.spike().potential(0), 4);
    }
}
