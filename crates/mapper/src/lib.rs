//! The Shenjing software mapping toolchain (Fig. 3 of the paper).
//!
//! The toolchain turns an abstract SNN ([`shenjing_snn::SnnNetwork`]) into
//! a cycle-by-cycle hardware program in two phases:
//!
//! 1. **Logical mapping** ([`logical`]) — split every layer across logical
//!    cores obeying the core's axon/neuron capacity; build the partial-sum
//!    fold groups (Algorithm 1 for fully connected layers, per-channel
//!    folds for convolutions) and the logical spike connections between
//!    layers. Convolutions are tiled spatially with halo duplication
//!    (§III / Fig. 4: "these overlapped data has to be duplicated and
//!    supplied to each"), one input channel × one output channel per core,
//!    giving the paper's `c_in · c_out · n_h · n_w` core-count structure.
//! 2. **Physical mapping** ([`place()`](place()), [`compile()`](compile())) — place logical cores
//!    onto chips (greedy rectangle search, adding 28×28-tile chips as
//!    needed), lower the logical schedules onto deterministic X-Y routes
//!    with wait-on-conflict flow control, and emit the Table I atomic
//!    operations into per-tile configuration memories.
//!
//! The compiled program ([`CompiledProgram`]) runs on the cycle-level
//! simulator (`shenjing-sim`), which must reproduce the abstract SNN's
//! spikes bit for bit — the paper's zero-loss mapping claim.
//!
//! # Example
//!
//! ```
//! use shenjing_core::ArchSpec;
//! use shenjing_mapper::Mapper;
//! use shenjing_nn::{LayerSpec, Network, Tensor};
//! use shenjing_snn::{convert, ConversionOptions};
//!
//! let mut ann = Network::from_specs(
//!     &[LayerSpec::dense(8, 4), LayerSpec::relu(), LayerSpec::dense(4, 2)],
//!     1,
//! )?;
//! let calib = vec![Tensor::from_vec(vec![8], vec![0.5; 8])?];
//! let snn = convert(&mut ann, &calib, &ConversionOptions::default())?;
//!
//! let arch = ArchSpec::tiny(); // 16x16 cores
//! let mapping = Mapper::new(arch).map(&snn)?;
//! assert_eq!(mapping.logical.total_cores(), 2);
//! # Ok::<(), shenjing_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod fig4;
pub mod ir;
pub mod logical;
pub mod place;

pub use compile::{compile, CompiledProgram};
pub use fig4::Fig4Regions;
pub use ir::{
    AxonSource, FoldGroup, LayerMapping, LogicalCore, LogicalCoreId, LogicalMapping, SpikeLink,
};
pub use logical::map_logical;
pub use place::{place, Placement, PlacementStrategy};

use shenjing_core::{ArchSpec, Result};
use shenjing_snn::SnnNetwork;

/// End-to-end mapping result: logical structure, physical placement and
/// the compiled cycle-by-cycle program.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Phase-1 output: cores, fold groups, spike links.
    pub logical: LogicalMapping,
    /// Phase-2a output: logical core → physical tile coordinates.
    pub placement: Placement,
    /// Phase-2b output: configuration memories and run metadata.
    pub program: CompiledProgram,
}

/// The toolchain façade.
#[derive(Debug, Clone)]
pub struct Mapper {
    arch: ArchSpec,
    strategy: PlacementStrategy,
}

impl Mapper {
    /// Creates a mapper for a target architecture with the paper's greedy
    /// placement.
    pub fn new(arch: ArchSpec) -> Mapper {
        Mapper { arch, strategy: PlacementStrategy::Greedy }
    }

    /// Overrides the placement strategy (the naive row-major strategy
    /// exists for the placement ablation benchmark).
    pub fn with_strategy(mut self, strategy: PlacementStrategy) -> Mapper {
        self.strategy = strategy;
        self
    }

    /// Runs the full toolchain on an abstract SNN.
    ///
    /// # Errors
    ///
    /// Returns [`shenjing_core::Error::MappingFailed`] when a layer cannot
    /// be split within core capacity or no placement exists.
    pub fn map(&self, snn: &SnnNetwork) -> Result<Mapping> {
        let logical = map_logical(&self.arch, snn)?;
        let placement = place(&self.arch, &logical, self.strategy)?;
        let program = compile(&self.arch, snn, &logical, &placement)?;
        Ok(Mapping { logical, placement, program })
    }

    /// The target architecture.
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }
}
