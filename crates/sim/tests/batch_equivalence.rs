//! Property: batched execution is bit-identical to sequential execution,
//! and the batched sparse fast path is bit-identical to the batched dense
//! reference implementation.
//!
//! The batched engine's whole claim is that it only restructures *when*
//! work happens, never *what* is computed: running `B` frames through
//! [`BatchSim`] must produce exactly the `SnnOutput`s that `B` sequential
//! [`CycleSim::run_frame`] calls produce — every spike of every timestep
//! and every residual potential. Since the batched engine adopted the
//! sequential engine's sparse-activity core (active-axon `ACC`,
//! occupancy-masked transfer), the claim is pinned in *two* directions:
//! batched-vs-sequential per lane, and batched-fast-vs-batched-reference
//! via [`verify_batched`] (outputs, whole-chip all-lane digests and error
//! cycles, including `ACC` overflow). This file drives both over random
//! small networks, weights, inputs, timestep counts — and, crucially, the
//! full activity-density × batch-width grid (silent through saturating,
//! widths including `B = 1`), so the dense/sparse crossover region itself
//! is covered, not just the endpoints.

use std::sync::Arc;

use proptest::prelude::*;
use shenjing_core::{ArchSpec, W5};
use shenjing_mapper::Mapper;
use shenjing_nn::Tensor;
use shenjing_sim::{
    digest_batch_chip, verify_batched, verify_batched_lanes, BatchSim, CycleSim, DecodedProgram,
};
use shenjing_snn::{SnnLayer, SnnNetwork, SpikingDense};

/// Largest dimensions the strategies below draw (the weight/input pools
/// are sized for them).
const MAX_IN: usize = 40;
const MAX_OUT: usize = 8;
const MAX_BATCH: usize = 5;

fn dense_layer(weights: &[i32], n_in: usize, n_out: usize, theta: i32) -> SnnLayer {
    let ws: Vec<W5> = weights[..n_in * n_out].iter().map(|&v| W5::new(v).unwrap()).collect();
    SnnLayer::Dense(SpikingDense::new(ws, n_in, n_out, theta, 1.0).unwrap())
}

fn frames(pool: &[f64], n_in: usize, batch: usize) -> Vec<Tensor> {
    (0..batch)
        .map(|k| Tensor::from_vec(vec![n_in], pool[k * n_in..(k + 1) * n_in].to_vec()).unwrap())
        .collect()
}

/// Maps `snn` on the tiny arch and asserts, for the given frames, both
/// equivalence directions: batched == sequential per lane, and batched
/// fast path == batched reference implementation (outputs, digests and
/// error cycles, via [`verify_batched`]).
fn assert_batched_equals_sequential(snn: &SnnNetwork, inputs: &[Tensor], timesteps: u32) {
    let arch = ArchSpec::tiny();
    let mapping = Mapper::new(arch.clone()).map(snn).unwrap();
    let decoded =
        Arc::new(DecodedProgram::decode(&arch, &mapping.logical, &mapping.program).unwrap());
    let mut sequential = CycleSim::from_decoded(Arc::clone(&decoded)).unwrap();
    let mut batched = BatchSim::from_decoded(Arc::clone(&decoded), inputs.len()).unwrap();

    let batch_out = batched.run_batch(inputs, timesteps).unwrap();
    assert_eq!(batch_out.len(), inputs.len());
    for (lane, (input, got)) in inputs.iter().zip(&batch_out).enumerate() {
        let want = sequential.run_frame(input, timesteps).unwrap();
        assert_eq!(
            *got,
            want,
            "lane {lane} diverged from the sequential run (batch {})",
            inputs.len()
        );
    }

    let report = verify_batched(&decoded, inputs, timesteps, inputs.len()).unwrap();
    assert!(
        report.is_exact(),
        "batched sparse fast path diverged from the batched reference: {report:?}"
    );

    // The optimized axis: a batched replica executing the compacted
    // schedule (and the trimmed, tile-ordered weight layout) must emit
    // exactly what the raw-program batched run emitted — and so must the
    // same optimized program forced back onto the raw walk.
    let optimized = Arc::new(
        DecodedProgram::decode(&arch, &mapping.logical, &mapping.program).unwrap().optimize(),
    );
    let mut compacted = BatchSim::from_decoded(Arc::clone(&optimized), inputs.len()).unwrap();
    assert_eq!(
        compacted.run_batch(inputs, timesteps).unwrap(),
        batch_out,
        "compacted batched run diverged from the raw program (batch {})",
        inputs.len()
    );
    let mut raw_walk = BatchSim::from_decoded(Arc::clone(&optimized), inputs.len()).unwrap();
    raw_walk.set_compaction(false);
    assert_eq!(
        raw_walk.run_batch(inputs, timesteps).unwrap(),
        batch_out,
        "optimized program on the raw walk diverged (batch {})",
        inputs.len()
    );

    // The worker-pool axis: fanning conflict-free tile groups across a
    // thread pool must be invisible — at every thread budget the
    // compacted batched walk's outputs *and* whole-chip all-lane state
    // must match the `threads = 1` serial walk bit for bit.
    let mut serial = BatchSim::from_decoded(Arc::clone(&optimized), inputs.len()).unwrap();
    serial.set_intra_pass_threads(1);
    let want = serial.run_batch(inputs, timesteps).unwrap();
    assert_eq!(want, batch_out, "the serial thread budget must not change results");
    for threads in [2, shenjing_sim::parallel::resolve(None).max(4)] {
        let mut pooled = BatchSim::from_decoded(Arc::clone(&optimized), inputs.len()).unwrap();
        pooled.set_intra_pass_threads(threads);
        assert_eq!(
            pooled.run_batch(inputs, timesteps).unwrap(),
            want,
            "batch diverged under {threads} worker threads"
        );
        assert_eq!(
            digest_batch_chip(0, pooled.chip()),
            digest_batch_chip(0, serial.chip()),
            "chip state diverged under {threads} worker threads"
        );
    }
}

proptest! {
    #[test]
    fn batched_single_layer_matches_sequential(
        n_in in 2usize..=MAX_IN,
        n_out in 1usize..=MAX_OUT,
        theta in 1i32..=30,
        batch in 1usize..=MAX_BATCH,
        timesteps in 2u32..=8,
        weights in proptest::collection::vec(-15i32..=15, MAX_IN * MAX_OUT),
        pool in proptest::collection::vec(0.0f64..1.0, MAX_BATCH * MAX_IN),
    ) {
        let snn = SnnNetwork::new(vec![dense_layer(&weights, n_in, n_out, theta)]).unwrap();
        let inputs = frames(&pool, n_in, batch);
        assert_batched_equals_sequential(&snn, &inputs, timesteps);
    }

    #[test]
    fn batched_two_layer_matches_sequential(
        n_in in 2usize..=20,
        n_mid in 1usize..=MAX_OUT,
        n_out in 1usize..=4,
        theta in 2i32..=20,
        batch in 2usize..=MAX_BATCH,
        timesteps in 2u32..=6,
        weights in proptest::collection::vec(-15i32..=15, 20 * MAX_OUT + MAX_OUT * 4),
        pool in proptest::collection::vec(0.0f64..1.0, MAX_BATCH * 20),
    ) {
        // Two chained layers exercise the spike NoC between layers on top
        // of the PS folds inside each.
        let l1 = dense_layer(&weights, n_in, n_mid, theta);
        let l2 = dense_layer(&weights[20 * MAX_OUT..], n_mid, n_out, theta);
        let snn = SnnNetwork::new(vec![l1, l2]).unwrap();
        let inputs = frames(&pool, n_in, batch);
        assert_batched_equals_sequential(&snn, &inputs, timesteps);
    }

    /// The crossover grid: activity density swept from silent (≈0%)
    /// through MNIST-like (~6%) and half-active (~50%) to saturating
    /// (100%), crossed with batch widths *including `B = 1`* — the lane
    /// count where the batched engine degenerates into the sequential
    /// shape. Every (density, width) cell must agree with the sequential
    /// engine per lane and with the batched dense reference bit for bit.
    #[test]
    fn batched_matches_sequential_across_density_and_width(
        n_in in 4usize..=MAX_IN,
        n_out in 1usize..=MAX_OUT,
        theta in 1i32..=30,
        batch in 1usize..=MAX_BATCH,
        timesteps in 2u32..=6,
        density_step in 0usize..4,
        jitter in 0.0f64..0.05,
        weights in proptest::collection::vec(-15i32..=15, MAX_IN * MAX_OUT),
        pool in proptest::collection::vec(0.0f64..1.0, MAX_BATCH * MAX_IN),
    ) {
        // The four regimes from the ROADMAP perf table; jitter keeps the
        // grid from degenerating into four exact constants.
        let density = [0.0, 0.06, 0.5, 1.0][density_step] + jitter;
        let snn = SnnNetwork::new(vec![dense_layer(&weights, n_in, n_out, theta)]).unwrap();
        let inputs: Vec<Tensor> = (0..batch)
            .map(|k| {
                let vals = pool[k * n_in..(k + 1) * n_in]
                    .iter()
                    .map(|v| if density >= 1.0 { 1.0 } else { (v * density).min(1.0) })
                    .collect();
                Tensor::from_vec(vec![n_in], vals).unwrap()
            })
            .collect();
        assert_batched_equals_sequential(&snn, &inputs, timesteps);
    }

    /// The lane-occupancy grid: a `cap`-lane simulator serving
    /// 1..=cap frames parked on an arbitrary lane subset — contiguous
    /// prefixes and the non-contiguous hole patterns that drains leave —
    /// crossed with the activity-density sweep. Every (occupancy,
    /// density) cell must agree with the sequential engine per frame
    /// *and* with the batched dense reference bit for bit (outputs and
    /// occupied-lane digests, via [`verify_batched_lanes`]).
    #[test]
    fn batched_matches_sequential_across_occupancy_patterns(
        n_in in 4usize..=MAX_IN,
        n_out in 1usize..=MAX_OUT,
        theta in 1i32..=30,
        cap in 2usize..=MAX_BATCH,
        lane_mask in 1u32..32,
        timesteps in 2u32..=6,
        density_step in 0usize..4,
        jitter in 0.0f64..0.05,
        weights in proptest::collection::vec(-15i32..=15, MAX_IN * MAX_OUT),
        pool in proptest::collection::vec(0.0f64..1.0, MAX_BATCH * MAX_IN),
    ) {
        // Fold the drawn mask onto the capacity; an empty selection
        // becomes "lane 0 only" so every case exercises the engine.
        let lane_mask = match lane_mask % (1u32 << cap) {
            0 => 1,
            m => m,
        };
        let lanes: Vec<usize> = (0..cap).filter(|&l| lane_mask & (1 << l) != 0).collect();
        let density = [0.0, 0.06, 0.5, 1.0][density_step] + jitter;
        let snn = SnnNetwork::new(vec![dense_layer(&weights, n_in, n_out, theta)]).unwrap();
        let inputs: Vec<Tensor> = (0..lanes.len())
            .map(|k| {
                let vals = pool[k * n_in..(k + 1) * n_in]
                    .iter()
                    .map(|v| if density >= 1.0 { 1.0 } else { (v * density).min(1.0) })
                    .collect();
                Tensor::from_vec(vec![n_in], vals).unwrap()
            })
            .collect();

        let arch = ArchSpec::tiny();
        let mapping = Mapper::new(arch.clone()).map(&snn).unwrap();
        let decoded =
            Arc::new(DecodedProgram::decode(&arch, &mapping.logical, &mapping.program).unwrap());

        // Direction 1: every occupied lane agrees with the sequential run.
        let mut sequential = CycleSim::from_decoded(Arc::clone(&decoded)).unwrap();
        let mut batched = BatchSim::from_decoded(Arc::clone(&decoded), cap).unwrap();
        batched.set_occupied_lanes(&lanes).unwrap();
        let batch_out = batched.run_occupied(&inputs, timesteps).unwrap();
        for ((input, got), lane) in inputs.iter().zip(&batch_out).zip(&lanes) {
            let want = sequential.run_frame(input, timesteps).unwrap();
            prop_assert_eq!(
                got,
                &want,
                "lane {} diverged from the sequential run (occupancy {:?} of {})",
                lane,
                &lanes,
                cap
            );
        }

        // Direction 2: fast path == dense reference at this occupancy.
        let report = verify_batched_lanes(&decoded, &inputs, timesteps, cap, &lanes).unwrap();
        prop_assert!(
            report.is_exact(),
            "sparse fast path diverged from the reference at occupancy {:?}: {report:?}",
            &lanes
        );
    }

    /// Drain-then-refill: a full pass, a random subset of lanes released
    /// (finished frames leaving), and a second pass on the surviving
    /// non-contiguous pattern. The second pass must be bit-exact against
    /// sequential runs — i.e. the `O(active state)` lane scrub leaves no
    /// residue behind and the stale unoccupied lanes leak into nothing.
    #[test]
    fn drained_lanes_leave_no_residue(
        n_in in 2usize..=20,
        n_mid in 1usize..=MAX_OUT,
        n_out in 1usize..=4,
        theta in 2i32..=20,
        cap in 2usize..=MAX_BATCH,
        drain_mask in 1u32..31,
        timesteps in 2u32..=6,
        weights in proptest::collection::vec(-15i32..=15, 20 * MAX_OUT + MAX_OUT * 4),
        pool in proptest::collection::vec(0.0f64..1.0, 2 * MAX_BATCH * 20),
    ) {
        // Fold the drain mask onto the capacity, draining at least one
        // lane and keeping at least one survivor.
        let drain_mask = match drain_mask % (1u32 << cap) {
            0 => 1,
            m if m == (1u32 << cap) - 1 => m & !(1 << (cap - 1)),
            m => m,
        };
        let survivors: Vec<usize> = (0..cap).filter(|&l| drain_mask & (1 << l) == 0).collect();
        let l1 = dense_layer(&weights, n_in, n_mid, theta);
        let l2 = dense_layer(&weights[20 * MAX_OUT..], n_mid, n_out, theta);
        let snn = SnnNetwork::new(vec![l1, l2]).unwrap();
        let arch = ArchSpec::tiny();
        let mapping = Mapper::new(arch.clone()).map(&snn).unwrap();
        let decoded =
            Arc::new(DecodedProgram::decode(&arch, &mapping.logical, &mapping.program).unwrap());
        let mut sequential = CycleSim::from_decoded(Arc::clone(&decoded)).unwrap();
        let mut batched = BatchSim::from_decoded(Arc::clone(&decoded), cap).unwrap();

        let first = frames(&pool, n_in, cap);
        let got = batched.run_batch(&first, timesteps).unwrap();
        for (input, out) in first.iter().zip(&got) {
            prop_assert_eq!(out, &sequential.run_frame(input, timesteps).unwrap());
        }

        for lane in 0..cap {
            if !survivors.contains(&lane) {
                batched.release_lane(lane).unwrap();
            }
        }
        let second = frames(&pool[MAX_BATCH * 20..], n_in, survivors.len());
        let got = batched.run_occupied(&second, timesteps).unwrap();
        for ((input, out), lane) in second.iter().zip(&got).zip(&survivors) {
            let want = sequential.run_frame(input, timesteps).unwrap();
            prop_assert_eq!(
                out,
                &want,
                "surviving lane {} diverged after draining {:?}",
                lane,
                (0..cap).filter(|l| !survivors.contains(l)).collect::<Vec<_>>()
            );
        }
    }

    /// Overflow-inducing weights on an oversized custom core: batches
    /// whose running `ACC` sum leaves the 13-bit accumulator must fail
    /// with exactly the reference's error — erroring batches count as
    /// exact in [`verify_batched`], like in `verify_sequential`.
    #[test]
    fn batched_oversized_core_overflow_matches_reference(
        n_in in 280usize..=400,
        theta in 1i32..=30,
        batch in 1usize..=3usize,
        timesteps in 1u32..=3,
        density in 0.8f64..1.0,
        magnitude in 12i32..=15,
    ) {
        let arch = ArchSpec {
            core_inputs: 512,
            core_neurons: 16,
            chip_rows: 4,
            chip_cols: 4,
            ..ArchSpec::tiny()
        };
        // All-positive maximal weights: a dense-enough lane overflows the
        // local accumulator partway through the checked sweep.
        let weights = vec![magnitude; n_in * 2];
        let snn = SnnNetwork::new(vec![dense_layer(&weights, n_in, 2, theta)]).unwrap();
        let mapping = Mapper::new(arch.clone()).map(&snn).unwrap();
        let decoded =
            Arc::new(DecodedProgram::decode(&arch, &mapping.logical, &mapping.program).unwrap());
        let inputs: Vec<Tensor> = (0..batch)
            .map(|_| Tensor::from_vec(vec![n_in], vec![density; n_in]).unwrap())
            .collect();
        let report = verify_batched(&decoded, &inputs, timesteps, batch).unwrap();
        prop_assert!(
            report.is_exact(),
            "overflow batches must error identically on both paths: {report:?}"
        );

        // The compacted batched walk must fail with the identical error —
        // same variant, same original cycle number — as the raw walk.
        let optimized = Arc::new(
            DecodedProgram::decode(&arch, &mapping.logical, &mapping.program)
                .unwrap()
                .optimize(),
        );
        let mut compacted = BatchSim::from_decoded(Arc::clone(&optimized), batch).unwrap();
        let mut raw = BatchSim::from_decoded(Arc::clone(&decoded), batch).unwrap();
        prop_assert_eq!(
            compacted.run_batch(&inputs, timesteps),
            raw.run_batch(&inputs, timesteps),
            "compacted batches must error identically to the raw program"
        );
    }
}
