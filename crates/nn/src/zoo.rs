//! The four benchmark network topologies of Table III.
//!
//! | | (a) MNIST MLP | (b) MNIST CNN | (c) CIFAR-10 CNN | (d) CIFAR-10 ResNet |
//! |---|---|---|---|---|
//! | input | 28×28×1 | 28×28×1 | 24×24×3 | 24×24×3 |
//! | body | FC1(784,512), FC2(512,10) | Conv1(3,3,1,16), Pool, Conv2(3,3,16,32), Pool, FC1(1568,128), FC2(128,10) | Conv1(5,5,3,16), Pool, Conv2(5,5,16,32), Pool, Conv3(3,3,32,64), Pool, FC1(576,256), FC2(256,128), FC3(128,10) | as (c) with Res/Conv2+Res/Conv3 in a residual block after Conv2 |
//!
//! Note: Table III prints CIFAR `Conv1(5,5,1,16)`; the input has 3
//! channels, so we use `(5,5,3,16)` (an evident typo in the paper — the
//! layer would otherwise not type-check against its own input).
//!
//! The ResNet (d) follows the paper's structure: the output of
//! `Res/Conv1` skips the `Res/Conv2 → Res/Conv3` body and adds to its
//! output through the shortcut normalization layer `diag(λ)`.

use crate::layer::LayerSpec;

/// Identifies one of the four Table III benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NetworkKind {
    /// (a) MNIST multilayer perceptron, 784-512-10.
    MnistMlp,
    /// (b) MNIST convolutional network.
    MnistCnn,
    /// (c) CIFAR-10 convolutional network.
    CifarCnn,
    /// (d) CIFAR-10 residual network.
    CifarResNet,
}

impl NetworkKind {
    /// All four benchmarks in Table III order.
    pub const ALL: [NetworkKind; 4] = [
        NetworkKind::MnistMlp,
        NetworkKind::MnistCnn,
        NetworkKind::CifarCnn,
        NetworkKind::CifarResNet,
    ];

    /// The layer specs of this benchmark.
    pub fn specs(self) -> Vec<LayerSpec> {
        match self {
            NetworkKind::MnistMlp => mnist_mlp(),
            NetworkKind::MnistCnn => mnist_cnn(),
            NetworkKind::CifarCnn => cifar_cnn(),
            NetworkKind::CifarResNet => cifar_resnet(),
        }
    }

    /// The benchmark's input shape `(h, w, c)`.
    pub fn input_shape(self) -> (usize, usize, usize) {
        match self {
            NetworkKind::MnistMlp | NetworkKind::MnistCnn => (28, 28, 1),
            NetworkKind::CifarCnn | NetworkKind::CifarResNet => (24, 24, 3),
        }
    }

    /// Table IV's spike-train length (timesteps per frame).
    pub fn paper_timesteps(self) -> u32 {
        match self {
            NetworkKind::MnistMlp | NetworkKind::MnistCnn => 20,
            NetworkKind::CifarCnn | NetworkKind::CifarResNet => 80,
        }
    }

    /// Table IV's target frame rate.
    pub fn paper_fps(self) -> u32 {
        match self {
            NetworkKind::MnistMlp => 40,
            _ => 30,
        }
    }

    /// Table IV's core count, for comparison against our mapper.
    pub fn paper_core_count(self) -> u32 {
        match self {
            NetworkKind::MnistMlp => 10,
            NetworkKind::MnistCnn => 705,
            NetworkKind::CifarCnn => 2977,
            NetworkKind::CifarResNet => 5863,
        }
    }

    /// Human-readable Table III / IV column label.
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::MnistMlp => "MNIST MLP",
            NetworkKind::MnistCnn => "MNIST CNN",
            NetworkKind::CifarCnn => "CIFAR-10 CNN",
            NetworkKind::CifarResNet => "CIFAR-10 ResNet",
        }
    }
}

impl std::fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Table III (a): `Input(28,28,1) → FC1(784,512) → FC2(512,10)`.
pub fn mnist_mlp() -> Vec<LayerSpec> {
    vec![LayerSpec::dense(784, 512), LayerSpec::relu(), LayerSpec::dense(512, 10)]
}

/// Table III (b): the MNIST CNN.
pub fn mnist_cnn() -> Vec<LayerSpec> {
    vec![
        LayerSpec::conv2d(3, 1, 16),
        LayerSpec::relu(),
        LayerSpec::avg_pool(2), // 28 → 14
        LayerSpec::conv2d(3, 16, 32),
        LayerSpec::relu(),
        LayerSpec::avg_pool(2), // 14 → 7
        LayerSpec::dense(7 * 7 * 32, 128),
        LayerSpec::relu(),
        LayerSpec::dense(128, 10),
    ]
}

/// Table III (c): the CIFAR-10 CNN (with the 3-channel Conv1 correction).
pub fn cifar_cnn() -> Vec<LayerSpec> {
    vec![
        LayerSpec::conv2d(5, 3, 16),
        LayerSpec::relu(),
        LayerSpec::avg_pool(2), // 24 → 12
        LayerSpec::conv2d(5, 16, 32),
        LayerSpec::relu(),
        LayerSpec::avg_pool(2), // 12 → 6
        LayerSpec::conv2d(3, 32, 64),
        LayerSpec::relu(),
        LayerSpec::avg_pool(2), // 6 → 3
        LayerSpec::dense(3 * 3 * 64, 256),
        LayerSpec::relu(),
        LayerSpec::dense(256, 128),
        LayerSpec::relu(),
        LayerSpec::dense(128, 10),
    ]
}

/// Table III (d): the CIFAR-10 ResNet. `Res/Conv1` lifts the channel count
/// to 32; the residual block wraps `Res/Conv2 → Res/Conv3` (both
/// 32-channel, so the identity shortcut type-checks) with shortcut scale
/// λ = 1.
pub fn cifar_resnet() -> Vec<LayerSpec> {
    vec![
        LayerSpec::conv2d(5, 3, 16),
        LayerSpec::relu(),
        LayerSpec::avg_pool(2),       // 24 → 12
        LayerSpec::conv2d(5, 16, 32), // Res/Conv1
        LayerSpec::relu(),
        LayerSpec::residual(
            vec![
                LayerSpec::conv2d(5, 32, 32), // Res/Conv2
                LayerSpec::relu(),
                LayerSpec::conv2d(5, 32, 32), // Res/Conv3
            ],
            1.0,
        ),
        LayerSpec::relu(),
        LayerSpec::avg_pool(2), // 12 → 6
        LayerSpec::conv2d(3, 32, 64),
        LayerSpec::relu(),
        LayerSpec::avg_pool(2), // 6 → 3
        LayerSpec::dense(3 * 3 * 64, 256),
        LayerSpec::relu(),
        LayerSpec::dense(256, 128),
        LayerSpec::relu(),
        LayerSpec::dense(128, 10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::tensor::Tensor;

    fn input_for(kind: NetworkKind) -> Tensor {
        let (h, w, c) = kind.input_shape();
        if kind == NetworkKind::MnistMlp {
            Tensor::zeros(vec![h * w * c])
        } else {
            Tensor::zeros(vec![h, w, c])
        }
    }

    #[test]
    fn all_four_networks_type_check_end_to_end() {
        for kind in NetworkKind::ALL {
            let mut net = Network::from_specs(&kind.specs(), 1).unwrap();
            let out = net.forward(&input_for(kind)).unwrap();
            assert_eq!(out.len(), 10, "{kind}: ten classes");
        }
    }

    #[test]
    fn mlp_parameter_count_matches_table() {
        let specs = mnist_mlp();
        let total: usize = specs.iter().map(LayerSpec::param_count).sum();
        assert_eq!(total, 784 * 512 + 512 * 10);
    }

    #[test]
    fn mnist_cnn_fc1_matches_table_iii() {
        // Table III gives FC1(1568, 128); 1568 must equal 7·7·32.
        let has = mnist_cnn()
            .iter()
            .any(|s| matches!(s, LayerSpec::Dense { inputs: 1568, outputs: 128 }));
        assert!(has);
    }

    #[test]
    fn cifar_fc1_matches_table_iii() {
        // Table III gives FC1(576, 256); 576 = 3·3·64 after three pools.
        for specs in [cifar_cnn(), cifar_resnet()] {
            let has =
                specs.iter().any(|s| matches!(s, LayerSpec::Dense { inputs: 576, outputs: 256 }));
            assert!(has);
        }
    }

    #[test]
    fn resnet_contains_residual_block() {
        let has = cifar_resnet().iter().any(|s| matches!(s, LayerSpec::Residual { .. }));
        assert!(has);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(NetworkKind::MnistMlp.paper_timesteps(), 20);
        assert_eq!(NetworkKind::CifarResNet.paper_timesteps(), 80);
        assert_eq!(NetworkKind::MnistMlp.paper_fps(), 40);
        assert_eq!(NetworkKind::CifarCnn.paper_fps(), 30);
        assert_eq!(NetworkKind::MnistMlp.paper_core_count(), 10);
        assert_eq!(NetworkKind::CifarResNet.paper_core_count(), 5863);
        assert_eq!(NetworkKind::MnistCnn.to_string(), "MNIST CNN");
    }
}
