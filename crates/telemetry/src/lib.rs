//! Observability for the serving tier: metrics, spans, and exporters.
//!
//! The paper's headline results are per-component breakdowns (Table
//! II/IV split power and latency across NoC, partial-sum routers, and
//! cores); this crate gives the reproduction's *runtime* the same shape
//! of visibility on a live workload. Three pieces:
//!
//! 1. **Metrics** ([`Registry`]) — always-on atomic [`Counter`]s,
//!    [`Gauge`]s and log2-bucketed [`TimeHistogram`]s, rendered as a
//!    Prometheus text exposition snapshot.
//! 2. **Spans** ([`SpanRecord`], [`SpanRing`]) — per-request lifecycle
//!    timestamps (admitted → batch-formed → planned → executed →
//!    drained → replied) recorded into a bounded ring for a sampled
//!    subset of requests, so the hot path pays a few atomic ops per
//!    request and one short lock per *sampled* request.
//! 3. **Engine profiles** ([`PassProfile`]) — per-phase pass time (ACC
//!    / SEND / transfer / drain) with active-axon and occupied-lane
//!    counts, filled in by the simulator engines when a sampled batch
//!    asks for profiling.
//!
//! [`Telemetry`] owns all three behind one epoch and one sampling
//! decision ([`Telemetry::sample`]), and exports either a
//! Perfetto-loadable Chrome trace ([`Telemetry::chrome_trace_json`])
//! or the Prometheus snapshot ([`Telemetry::prometheus`]).
//!
//! ```
//! use shenjing_telemetry::{SpanRecord, Telemetry, TelemetryConfig};
//!
//! let telemetry = Telemetry::new(TelemetryConfig::default().with_sample_every(1));
//! telemetry.registry().counter("demo_total").inc();
//! assert!(telemetry.sample());
//! let at = telemetry.now_us();
//! telemetry.record_span(SpanRecord {
//!     id: 0,
//!     model: "digits".into(),
//!     admitted_us: at,
//!     replied_us: at,
//!     ..SpanRecord::default()
//! });
//! assert_eq!(telemetry.spans().len(), 1);
//! assert!(telemetry.prometheus().contains("demo_total 1"));
//! assert!(telemetry.chrome_trace_json().unwrap().contains("traceEvents"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod span;

pub use chrome::{chrome_trace, validate, ChromeEvent, ChromeTrace, EventArgs, TraceSummary};
pub use metrics::{Counter, Gauge, Registry, TimeHistogram};
pub use profile::PassProfile;
pub use span::{SpanRecord, SpanRing};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use shenjing_core::Result;

/// Telemetry policy: one value on the runtime config.
///
/// Defaults keep the hot-path cost negligible (1-in-16 sampling, a
/// 4096-span ring); [`dense`](TelemetryConfig::dense) records every
/// request for demos and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch: when false, [`Telemetry::sample`] never fires and
    /// no spans or profiles are recorded (counters stay live — they
    /// are too cheap to gate).
    pub enabled: bool,
    /// Record the lifecycle span (and profile the carrying batch) of
    /// every N-th request. 1 records everything.
    pub sample_every: u64,
    /// Bounded span-ring capacity; the oldest span is evicted (and
    /// counted) on overflow.
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig { enabled: true, sample_every: 16, ring_capacity: 4096 }
    }
}

impl TelemetryConfig {
    /// Every request sampled — full traces, for demos and tests.
    pub fn dense() -> TelemetryConfig {
        TelemetryConfig::default().with_sample_every(1)
    }

    /// Sampling and span recording off; counters remain live.
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig { enabled: false, ..TelemetryConfig::default() }
    }

    /// Sets the sampling period (clamped to at least 1).
    #[must_use]
    pub fn with_sample_every(mut self, every: u64) -> TelemetryConfig {
        self.sample_every = every.max(1);
        self
    }

    /// Sets the span-ring capacity (clamped to at least 1).
    #[must_use]
    pub fn with_ring_capacity(mut self, capacity: usize) -> TelemetryConfig {
        self.ring_capacity = capacity.max(1);
        self
    }
}

/// The telemetry hub one runtime owns: an epoch all span timestamps
/// are relative to, the metric [`Registry`], the sampled [`SpanRing`],
/// and the sampling counter.
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    config: TelemetryConfig,
    registry: Registry,
    spans: SpanRing,
    decisions: AtomicU64,
}

impl Telemetry {
    /// A fresh hub; the epoch is now.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        let spans = SpanRing::new(config.ring_capacity);
        Telemetry {
            epoch: Instant::now(),
            config,
            registry: Registry::new(),
            spans,
            decisions: AtomicU64::new(0),
        }
    }

    /// The configured policy.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The instant all span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds since the epoch, as span timestamps record them.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Converts an instant to microseconds since the epoch (zero for
    /// instants before it).
    pub fn instant_us(&self, at: Instant) -> f64 {
        at.saturating_duration_since(self.epoch).as_secs_f64() * 1e6
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// One sampling decision: true for every `sample_every`-th call
    /// while enabled. A single relaxed atomic increment.
    pub fn sample(&self) -> bool {
        if !self.config.enabled {
            return false;
        }
        self.decisions.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.config.sample_every)
    }

    /// Records one sampled lifecycle span.
    pub fn record_span(&self, span: SpanRecord) {
        if self.config.enabled {
            self.spans.push(span);
        }
    }

    /// Snapshot of the retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.snapshot()
    }

    /// Spans evicted from the ring because it was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// The retained spans as a Chrome trace.
    pub fn chrome_trace(&self) -> ChromeTrace {
        chrome::chrome_trace(&self.spans())
    }

    /// The retained spans as Chrome-trace JSON (open in Perfetto or
    /// `chrome://tracing`).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures as
    /// [`shenjing_core::Error::InvalidConfig`].
    pub fn chrome_trace_json(&self) -> Result<String> {
        serde_json::to_string(&self.chrome_trace())
            .map_err(|e| shenjing_core::Error::config(format!("encode chrome trace: {e}")))
    }

    /// The Prometheus text exposition snapshot of the registry.
    pub fn prometheus(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_honours_period_and_master_switch() {
        let t = Telemetry::new(TelemetryConfig::default().with_sample_every(4));
        let hits = (0..16).filter(|_| t.sample()).count();
        assert_eq!(hits, 4);
        let off = Telemetry::new(TelemetryConfig::disabled());
        assert!((0..16).all(|_| !off.sample()));
        off.record_span(SpanRecord::default());
        assert!(off.spans().is_empty(), "disabled telemetry records nothing");
    }

    #[test]
    fn config_clamps_degenerate_values() {
        let c = TelemetryConfig::default().with_sample_every(0).with_ring_capacity(0);
        assert_eq!(c.sample_every, 1);
        assert_eq!(c.ring_capacity, 1);
        assert_eq!(TelemetryConfig::dense().sample_every, 1);
    }

    #[test]
    fn timestamps_are_relative_to_the_epoch() {
        let t = Telemetry::new(TelemetryConfig::default());
        assert_eq!(t.instant_us(t.epoch()), 0.0);
        let now = t.now_us();
        assert!(now >= 0.0);
        assert!(t.instant_us(Instant::now()) >= now);
    }
}
