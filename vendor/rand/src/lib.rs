//! Offline stand-in for the `rand` crate (API subset of rand 0.8).
//!
//! This environment has no crates.io access, so the workspace vendors the
//! exact `rand` surface its sources use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64: tiny, fast, and — the property the
//! reproduction actually depends on — **fully deterministic from the
//! seed**, so every dataset, weight init and experiment in the workspace
//! is reproducible bit for bit. It is *not* the same stream as upstream
//! `StdRng` (ChaCha12); swapping in the registry crate changes the
//! sampled values but no API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator producing raw 64-bit output.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut rng = StdRng { state: seed };
            // Burn a few outputs so small seeds decorrelate immediately.
            for _ in 0..4 {
                rng.next_u64();
            }
            rng
        }
    }
}

/// A range that high-level sampling methods can draw from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let (lo, hi) = (self.start as f64, self.end as f64);
                let v = (lo + unit * (hi - lo)) as $t;
                // Keep the half-open contract even when rounding lands
                // exactly on the excluded upper bound (coarse ULPs near
                // large magnitudes).
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Extension trait: random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-15..=15);
            assert!((-15..=15).contains(&v));
            let f = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
