//! Per-phase engine profiles: where a pass's wall-clock time went.
//!
//! One simulated cycle has four phases — core accumulation (ACC ops),
//! router SEND ops, the inter-tile transfer sweep, and delivery drain —
//! mirroring the paper's per-component breakdown (NoC vs partial-sum
//! routers vs cores). A [`PassProfile`] accumulates those phase times
//! plus activity counts over one or more engine passes; engines fill
//! one in while profiling and the runtime merges them into batch spans
//! and registry-wide totals.

use std::time::Duration;

/// Phase-attributed wall-clock profile of one or more engine passes.
///
/// All time fields are nanoseconds of host wall-clock spent inside the
/// corresponding phase of the cycle loop; activity counts make the
/// times interpretable (ns per active axon, per occupied lane).
#[derive(Debug, Default, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PassProfile {
    /// Engine passes folded into this profile (one per frame for the
    /// sequential engine, one per batch for the batched engine).
    pub passes: u64,
    /// Timesteps executed across all passes.
    pub timesteps: u64,
    /// Cycles executed across all passes.
    pub cycles: u64,
    /// Nanoseconds spent in neuron-core ACC operations.
    pub acc_ns: u64,
    /// Nanoseconds spent in PS-router and spike-router SEND operations.
    pub send_ns: u64,
    /// Nanoseconds spent in the inter-tile transfer sweep.
    pub transfer_ns: u64,
    /// Nanoseconds spent committing queued deliveries (drain).
    pub drain_ns: u64,
    /// Wall-clock nanoseconds of the op-execution phase as the cycle
    /// loop observes it, including any worker-pool spawn/join overhead.
    /// Under a serial walk this tracks `acc_ns + send_ns`; under an
    /// intra-pass parallel walk the summed per-group times exceed it —
    /// see [`parallel_efficiency`](PassProfile::parallel_efficiency).
    pub op_wall_ns: u64,
    /// Sum over timesteps of the number of active axons after spike
    /// injection — the sparsity the activity-gated engines exploit.
    pub active_axon_steps: u64,
    /// Sum over passes of occupied lanes (zero for the sequential
    /// engine, which has no lanes).
    pub occupied_lane_steps: u64,
}

impl PassProfile {
    /// Folds `other` into `self`, field by field.
    pub fn merge(&mut self, other: &PassProfile) {
        self.passes += other.passes;
        self.timesteps += other.timesteps;
        self.cycles += other.cycles;
        self.acc_ns += other.acc_ns;
        self.send_ns += other.send_ns;
        self.transfer_ns += other.transfer_ns;
        self.drain_ns += other.drain_ns;
        self.op_wall_ns += other.op_wall_ns;
        self.active_axon_steps += other.active_axon_steps;
        self.occupied_lane_steps += other.occupied_lane_steps;
    }

    /// Intra-pass parallel speedup of the op-execution phase: summed
    /// per-group op time (`acc_ns + send_ns`) over the wall-clock time
    /// the cycle loop actually waited (`op_wall_ns`). `≈ 1.0` for the
    /// serial walk, `> 1.0` when the worker pool overlapped groups,
    /// `< 1.0` when spawn overhead dominated. `None` until any op phase
    /// has been timed.
    pub fn parallel_efficiency(&self) -> Option<f64> {
        if self.op_wall_ns == 0 {
            return None;
        }
        Some((self.acc_ns + self.send_ns) as f64 / self.op_wall_ns as f64)
    }

    /// Total nanoseconds attributed to any phase.
    pub fn total_phase_ns(&self) -> u64 {
        self.acc_ns + self.send_ns + self.transfer_ns + self.drain_ns
    }

    /// Total attributed time as a [`Duration`].
    pub fn total_phase_time(&self) -> Duration {
        Duration::from_nanos(self.total_phase_ns())
    }

    /// Whether any pass has been folded in.
    pub fn is_empty(&self) -> bool {
        self.passes == 0
    }

    /// `(name, nanoseconds)` pairs for the four phases, in cycle order.
    pub fn phase_ns(&self) -> [(&'static str, u64); 4] {
        [
            ("acc", self.acc_ns),
            ("send", self.send_ns),
            ("transfer", self.transfer_ns),
            ("drain", self.drain_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = PassProfile {
            passes: 1,
            timesteps: 8,
            cycles: 80,
            acc_ns: 10,
            send_ns: 20,
            transfer_ns: 30,
            drain_ns: 40,
            op_wall_ns: 15,
            active_axon_steps: 5,
            occupied_lane_steps: 4,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.passes, 2);
        assert_eq!(a.cycles, 160);
        assert_eq!(a.total_phase_ns(), 200);
        assert_eq!(a.op_wall_ns, 30);
        assert!(!a.is_empty());
        assert!(PassProfile::default().is_empty());
        assert_eq!(a.phase_ns()[2], ("transfer", 60));
    }

    #[test]
    fn parallel_efficiency_is_summed_over_wall() {
        assert_eq!(PassProfile::default().parallel_efficiency(), None);
        let p = PassProfile { acc_ns: 30, send_ns: 10, op_wall_ns: 20, ..Default::default() };
        assert_eq!(p.parallel_efficiency(), Some(2.0));
    }
}
