//! Serving-runtime throughput: the batched engine against a sequential
//! `CycleSim` loop, plus the end-to-end scheduler path.
//!
//! The acceptance bar since the engines were unified on one sparse
//! activity core: batched execution at batch 16 must beat the sequential
//! loop on `ArchSpec::paper()` at MNIST activity — batching is strictly
//! additive, amortizing the control-word walk across lanes (see the
//! CycleSim-throughput entry in ROADMAP.md for measured numbers).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use shenjing::prelude::*;
use shenjing::snn::snn_from_specs;

const BATCH: usize = 16;
const TIMESTEPS: u32 = 8;

fn bench_runtime(c: &mut Criterion) {
    let arch = ArchSpec::paper();
    let snn = snn_from_specs(&NetworkKind::MnistMlp.specs(), (28, 28, 1), 7).unwrap();
    let model = CompiledModel::compile(&arch, &snn).unwrap();
    let frames: Vec<Tensor> = (0..BATCH)
        .map(|k| {
            Tensor::from_vec(vec![784], (0..784).map(|i| ((i + k * 37) % 7) as f64 / 7.0).collect())
                .unwrap()
        })
        .collect();

    // Baseline: one chip replica advancing the 16 frames one at a time.
    let mut sequential = model.instantiate().unwrap();
    c.bench_function("runtime_sequential_16_frames_t8", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| sequential.run_frame(f, TIMESTEPS).unwrap().spike_counts[0])
                .sum::<u32>()
        })
    });

    // The batched engine: one pass over the schedule advances all 16.
    let mut batched = model.instantiate_batched(BATCH).unwrap();
    c.bench_function("runtime_batched_16_frames_t8", |b| {
        b.iter(|| batched.run_batch(&frames, TIMESTEPS).unwrap())
    });

    // Intra-pass parallelism scaling: the same 16-frame batched pass
    // with the tile-group worker pool pinned to 1, 2 and 4 threads.
    // The 1-thread point doubles as the serial-regression guard for the
    // pool plumbing; on a single-core host the wider points measure
    // spawn overhead, not speedup — compare medians across the axis on
    // a multi-core box.
    for threads in [1usize, 2, 4] {
        let mut scaled = model.instantiate_batched(BATCH).unwrap();
        scaled.set_intra_pass_threads(threads);
        c.bench_function(&format!("parallel_scaling_batched_16_threads_{threads}"), |b| {
            b.iter(|| scaled.run_batch(&frames, TIMESTEPS).unwrap())
        });
    }

    // Under-full batch on the same 16-lane replica: with lane-occupancy
    // execution this must cost ~4 lanes of payload plus one control-word
    // walk (occupancy-bound), not a full 16-lane pass (capacity-bound).
    // The acceptance bar is ≤ ~1.5× the 4-frame sequential cost.
    c.bench_function("runtime_batched_4of16_frames_t8", |b| {
        b.iter(|| batched.run_batch(&frames[..4], TIMESTEPS).unwrap())
    });

    // Cheap instantiation from the shared artifact (the per-worker cost
    // the decoded program amortizes).
    c.bench_function("runtime_instantiate_replica", |b| b.iter(|| model.instantiate().unwrap()));

    // The compile-side cost of the schedule optimizer: decode plus the
    // four optimizer passes, paid once per artifact. Tracked so the
    // one-time compile cost stays negligible next to what the compacted
    // schedule saves on every serving pass.
    let mapping = Mapper::new(arch.clone()).map(&snn).unwrap();
    c.bench_function("decode_and_optimize_mlp", |b| {
        b.iter(|| {
            shenjing::sim::DecodedProgram::decode(&arch, &mapping.logical, &mapping.program)
                .unwrap()
                .optimize()
                .compacted_cycles()
                .unwrap()
        })
    });

    // End to end through registry + admission + batching policy + worker
    // shards (every worker warm, as the pre-registry runtime was).
    c.bench_function("runtime_serve_32_frames_2_workers", |b| {
        b.iter(|| {
            let registry = ModelRegistry::new()
                .with_model("mnist", model.clone(), ServeOptions::default().with_warm_replicas(2))
                .unwrap();
            let runtime = Runtime::serve(
                registry,
                RuntimeConfig {
                    workers: 2,
                    max_batch: BATCH,
                    max_wait: Duration::from_millis(1),
                    timesteps: TIMESTEPS,
                    ..Default::default()
                },
            )
            .unwrap();
            let requests: Vec<InferenceRequest> = frames
                .iter()
                .chain(frames.iter())
                .map(|f| InferenceRequest::new("mnist", f.clone()))
                .collect();
            let replies = runtime.infer_many(&requests).unwrap();
            runtime.shutdown().unwrap();
            replies.len()
        })
    });
}

criterion_group! {
    name = benches;
    // The sequential baseline costs ~30 s per sample; keep the group short.
    config = Criterion::default().sample_size(3);
    targets = bench_runtime
}
criterion_main!(benches);
