//! Table III — the four benchmark network topologies, with parameter
//! counts and shape chains.

use shenjing::nn::LayerSpec;
use shenjing::prelude::*;

fn describe(spec: &LayerSpec) -> String {
    match spec {
        LayerSpec::Dense { inputs, outputs } => format!("FC({inputs},{outputs})"),
        LayerSpec::Conv2d { kernel, in_ch, out_ch } => {
            format!("Conv({kernel},{kernel},{in_ch},{out_ch})")
        }
        LayerSpec::AvgPool2d { size } => format!("Pool({size},{size})"),
        LayerSpec::Relu => "ReLU".into(),
        LayerSpec::Residual { body, lambda } => {
            let inner: Vec<String> = body.iter().map(describe).collect();
            format!("Residual[{} | λ={lambda}]", inner.join(", "))
        }
    }
}

fn main() {
    println!("=== Table III: summary of applications ===\n");
    for (tag, kind) in ["a", "b", "c", "d"].iter().zip(NetworkKind::ALL) {
        let specs = kind.specs();
        let params: usize = specs.iter().map(LayerSpec::param_count).sum();
        let (h, w, c) = kind.input_shape();
        println!("({tag}) {}", kind.label());
        println!("  Input({h}, {w}, {c})");
        for spec in &specs {
            if !matches!(spec, LayerSpec::Relu) {
                println!("  {}", describe(spec));
            }
        }
        println!("  parameters: {params}");
        println!(
            "  paper: T = {}, {} fps, {} cores\n",
            kind.paper_timesteps(),
            kind.paper_fps(),
            kind.paper_core_count(),
        );
    }
}
